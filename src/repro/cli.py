"""Command-line entry points for the Zoomer reproduction.

Provides a tiny CLI so the main workflows can be driven without writing
Python:

* ``python -m repro.cli train``     — train Zoomer (or a baseline) on a
  synthetic Taobao-like graph and report AUC / HitRate@K.
* ``python -m repro.cli serve``     — train briefly, stand up the (optionally
  sharded) serving stack, run a QPS sweep (the Fig. 9 curve) and a
  batch-size-versus-latency sweep over the micro-batched path.
* ``python -m repro.cli daemon``    — train briefly, deploy, and put the
  server behind the asyncio TCP tier (newline-delimited JSON, admission
  control, per-tenant quotas); ``--self-drive N`` fires an open-loop
  Poisson load run against it and prints the latency/shed report.
* ``python -m repro.cli experiment`` — the online-experimentation demo
  (paper Section VII-D): train a control and a challenger model, host both
  behind one daemon with a deterministic traffic split (or shadow traffic,
  or a canary ramp), drive simulated requests plus click feedback through
  the wire protocol, and print Table IV-style CTR/PPC/RPM lifts per
  variant.
* ``python -m repro.cli chaos``     — the fault-injection drill: train
  briefly, deploy on a worker pool, arm a seeded
  :class:`~repro.faults.FaultPlan` (worker crashes, network stalls/drops,
  refresh failures), drive open-loop load through the daemon, and print
  the recovery accounting — what fired, what was recovered, and whether
  any request was lost.  ``--expect-zero-lost`` turns it into a CI gate.
* ``python -m repro.cli motivation`` — print the Fig. 4(b)/(c) information-
  overload measurements for a generated dataset.
* ``python -m repro.cli ingest``    — the streaming demo: build a
  ``behavior-logs`` graph from the warm prefix of a session log, train and
  deploy, then replay the remaining events in timestamp order through
  ``Pipeline.ingest`` (micro-batched graph updates + scoped server
  refreshes) and report what changed.

Every command is a thin driver over :mod:`repro.api`: the arguments are
folded into an :class:`~repro.api.ExperimentSpec` and executed by the
:class:`~repro.api.Pipeline` facade, so the CLI, the examples, and the
benchmark harness all run through the same factory surface.  The CLI
intentionally exposes only a few knobs (scale preset, model name, epochs,
fanout); anything more detailed should build a spec directly.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import nullcontext
from typing import List, Optional

import numpy as np

from repro.api import (
    DaemonSpec,
    DataSpec,
    ExperimentSpec,
    ExperimentTierSpec,
    LifecycleSpec,
    ModelSpec,
    ParallelSpec,
    Pipeline,
    RegistryError,
    ServingSpec,
    StreamingSpec,
    TrainSpec,
    load_dataset,
)
from repro.experiments import (
    focal_local_similarity_cdf,
    format_table,
    successive_query_similarities,
)
from repro.experiments.motivation import fraction_below


def _spec_from_args(args: argparse.Namespace, *,
                    max_test_examples: Optional[int],
                    training: TrainSpec,
                    serving: Optional[ServingSpec] = None) -> ExperimentSpec:
    """Fold the common CLI arguments into an :class:`ExperimentSpec`."""
    return ExperimentSpec(
        dataset=DataSpec(name="synthetic-taobao",
                         params={"scale": args.scale},
                         train_fraction=0.9,
                         max_train_examples=args.max_examples,
                         max_test_examples=max_test_examples),
        model=ModelSpec(name=args.model,
                        embedding_dim=args.embedding_dim,
                        fanouts=(args.fanout, max(args.fanout // 2, 1))),
        training=training,
        serving=serving if serving is not None else ServingSpec(),
        parallel=_parallel_from_args(args),
        seed=args.seed)


def _parallel_from_args(args: argparse.Namespace) -> ParallelSpec:
    """The ``ParallelSpec`` described by ``--num-workers`` and its backend."""
    return ParallelSpec(num_workers=args.num_workers,
                        backend=args.parallel_backend)


def _fault_rows(plan) -> List[dict]:
    """Per-site ``plan.summary()`` rows for :func:`format_table`."""
    return [{"site": site, "occurrences": counts["occurrences"],
             "fired": counts["fired"]}
            for site, counts in plan.summary().items()]


def _fault_plan_from_args(args: argparse.Namespace,
                          spec: ExperimentSpec):
    """The fault plan this run should arm, or ``None``.

    An explicit ``--fault-plan`` JSON argument wins; otherwise the spec's
    declarative ``faults`` section (seeded by the experiment seed) is used.
    Arming is a CLI concern — the :class:`Pipeline` itself never arms a
    plan, so library users are unaffected unless they opt in.
    """
    from repro.faults import FaultPlan

    text = getattr(args, "fault_plan", None)
    if text:
        try:
            return FaultPlan.from_json(text)
        except ValueError as error:
            raise SystemExit(f"--fault-plan: {error}")
    return spec.faults.to_plan(default_seed=spec.seed)


def _pipeline_or_exit(spec: ExperimentSpec) -> Pipeline:
    # RegistryError for unknown names (lists the known ones), ValueError for
    # out-of-range knobs — both are user input errors, not tracebacks.
    try:
        return Pipeline(spec)
    except (RegistryError, ValueError) as error:
        raise SystemExit(str(error))


def _cmd_train(args: argparse.Namespace) -> int:
    spec = _spec_from_args(
        args,
        max_test_examples=max(args.max_examples // 3, 100),
        training=TrainSpec(epochs=args.epochs, batch_size=args.batch_size,
                           learning_rate=args.learning_rate, loss="focal",
                           seed=0))
    with _pipeline_or_exit(spec) as pipeline:
        pipeline.fit()
        num_items = pipeline.graph.num_nodes[pipeline.model.item_node_type()]
        evaluation = pipeline.evaluate(ks=(10, 50), candidate_pool=num_items,
                                       max_requests=30)
        rows = [{
            "model": evaluation["model"],
            "auc": round(evaluation["auc"], 4),
            "hitrate@10": round(evaluation["hit_rates"][10], 3),
            "hitrate@50": round(evaluation["hit_rates"][50], 3),
            "train_s": round(evaluation["training_seconds"], 1),
            "iterations": evaluation["iterations"],
        }]
        print(format_table(rows,
                           title=f"Training on the {args.scale!r} preset"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.num_shards < 1:
        raise SystemExit("--num-shards must be at least 1")
    if args.serve_batch_size < 1:
        raise SystemExit("--serve-batch-size must be at least 1")
    spec = _spec_from_args(
        args,
        max_test_examples=0,
        training=TrainSpec(epochs=1, batch_size=args.batch_size,
                           learning_rate=args.learning_rate, loss="focal",
                           max_batches_per_epoch=6, seed=0),
        serving=ServingSpec(cache_capacity=30, ann_cells=8,
                            num_shards=args.num_shards,
                            serve_batch_size=args.serve_batch_size,
                            warm_users=20, warm_queries=20))
    with _pipeline_or_exit(spec) as pipeline:
        server = pipeline.deploy()
        calibration = [(s.user_id, s.query_id)
                       for s in pipeline.dataset.sessions[:20]]
        rows = server.qps_sweep([1000, 5000, 10000, 20000, 50000], calibration)
        shards = f"{args.num_shards} shard(s)"
        if args.num_workers:
            shards += f", {args.num_workers} worker(s)"
        print(format_table(rows, title=f"Response time vs QPS ({shards})"))
        if args.serve_batch_size > 1:
            batch_sizes = sorted({1, max(args.serve_batch_size // 4, 2),
                                  args.serve_batch_size})
            batch_rows = server.batch_size_sweep(10_000, calibration,
                                                 batch_sizes)
            print(format_table(batch_rows,
                               title="Batch size vs latency at 10K QPS"))
    return 0


def _cmd_daemon(args: argparse.Namespace) -> int:
    try:
        daemon_spec = DaemonSpec(host=args.host, port=args.port,
                                 max_batch_size=args.serve_batch_size,
                                 max_wait_ms=args.max_wait_ms,
                                 max_queue_depth=args.queue_depth,
                                 shed_policy=args.shed_policy).validate()
    except ValueError as error:
        raise SystemExit(str(error))
    spec = _spec_from_args(
        args,
        max_test_examples=0,
        training=TrainSpec(epochs=1, batch_size=args.batch_size,
                           learning_rate=args.learning_rate, loss="focal",
                           max_batches_per_epoch=6, seed=0),
        serving=ServingSpec(cache_capacity=30, ann_cells=8,
                            warm_users=20, warm_queries=20))
    spec.daemon = daemon_spec
    with _pipeline_or_exit(spec) as pipeline:
        deployment = pipeline.deploy()
        plan = _fault_plan_from_args(args, spec)
        with deployment.daemon() as daemon, \
                (plan.armed() if plan is not None else nullcontext()):
            print(f"serving daemon listening on "
                  f"{daemon.host}:{daemon.port} "
                  f"(batch<= {daemon.spec.max_batch_size}, "
                  f"wait<= {daemon.spec.max_wait_ms} ms, "
                  f"queue<= {daemon.spec.max_queue_depth}, "
                  f"shed={daemon.spec.shed_policy})")
            if args.self_drive > 0:
                from repro.serving.loadgen import OpenLoopLoadGenerator
                graph = pipeline.graph
                generator = OpenLoopLoadGenerator(
                    daemon.host, daemon.port, qps=args.qps,
                    num_requests=args.self_drive,
                    num_users=graph.num_nodes[pipeline.model.user_type],
                    num_queries=graph.num_nodes[
                        pipeline.model.query_node_type()],
                    seed=args.seed)
                report = generator.run()
                summary = report.to_dict()
                rows = [{"measurement": key, "value": value}
                        for key, value in summary.items()
                        if key != "latency_ms"]
                rows += [{"measurement": f"latency {name} (ms)",
                          "value": value}
                         for name, value in summary["latency_ms"].items()]
                print(format_table(
                    rows, title=f"Open-loop self-drive at {args.qps} QPS"))
                if plan is not None:
                    print(format_table(
                        _fault_rows(plan),
                        title="Fault injection accounting"))
                if args.expect_zero_shed and (report.shed or report.quota
                                              or report.errors):
                    print("FAIL: expected zero shed/quota/errors, got "
                          f"shed={report.shed} quota={report.quota} "
                          f"errors={report.errors}", file=sys.stderr)
                    return 1
                return 0
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                print("draining...")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.ab_test import ABTestConfig, ABTestSimulator
    from repro.serving.daemon import DaemonClient

    if args.requests < 1:
        raise SystemExit("--requests must be at least 1")
    canary_steps: tuple = ()
    if args.canary_steps:
        try:
            canary_steps = tuple(float(s)
                                 for s in args.canary_steps.split(","))
        except ValueError:
            raise SystemExit("--canary-steps must be comma-separated floats, "
                             f"got {args.canary_steps!r}")
    if args.shadow and canary_steps:
        raise SystemExit("--shadow and --canary-steps are mutually exclusive")
    control_name = args.model
    challenger_name = args.challenger_model
    if challenger_name == control_name:
        challenger_name = f"{challenger_name}-challenger"
    fractions: tuple = ()
    if not args.shadow and not canary_steps:
        if not 0.0 < args.challenger_fraction < 1.0:
            raise SystemExit("--challenger-fraction must be in (0, 1)")
        fractions = (1.0 - args.challenger_fraction,
                     args.challenger_fraction)
    try:
        tier_spec = ExperimentTierSpec(
            variants=(control_name, challenger_name), salt=args.salt,
            fractions=fractions, shadow=args.shadow,
            canary_steps=canary_steps).validate()
    except ValueError as error:
        raise SystemExit(str(error))

    def _build_spec(model_name: str) -> ExperimentSpec:
        spec = _spec_from_args(
            args,
            max_test_examples=0,
            training=TrainSpec(epochs=args.epochs, batch_size=args.batch_size,
                               learning_rate=args.learning_rate, loss="focal",
                               max_batches_per_epoch=6, seed=0),
            serving=ServingSpec(cache_capacity=30, ann_cells=8,
                                warm_users=20, warm_queries=20))
        spec.model.name = model_name
        return spec

    control_spec = _build_spec(args.model)
    control_spec.experiment = tier_spec
    with _pipeline_or_exit(control_spec) as pipeline, \
            _pipeline_or_exit(_build_spec(args.challenger_model)) as rival:
        deployment = pipeline.deploy()
        challenger_server = rival.deploy().server
        tier = deployment.experiment({challenger_name: challenger_server})
        if args.shadow:
            # Shadow results never reach a client; a second simulator (its
            # own seeded RNG, running on the daemon's event loop) turns
            # them into feedback so both variants accumulate metrics.
            shadow_sim = ABTestSimulator(pipeline.dataset,
                                         ABTestConfig(seed=args.seed + 1))

            def _on_shadow(name: str, result) -> None:
                imp, clk, rev = shadow_sim.simulate_impressions(
                    result.user_id, result.query_id, result.item_ids[:10])
                tier.record_feedback(result.user_id, impressions=imp,
                                     clicks=clk, revenue=rev, variant=name)

            tier.on_shadow_result = _on_shadow
        simulator = ABTestSimulator(pipeline.dataset,
                                    ABTestConfig(seed=args.seed))
        sessions = pipeline.dataset.sessions
        with deployment.daemon(experiment=tier) as daemon, \
                DaemonClient(daemon.host, daemon.port) as client:
            for i in range(args.requests):
                session = sessions[i % len(sessions)]
                reply = client.serve(session.user_id, session.query_id, k=10)
                if not reply.get("ok"):
                    continue
                imp, clk, rev = simulator.simulate_impressions(
                    session.user_id, session.query_id, reply["item_ids"])
                client.feedback(session.user_id, impressions=imp, clicks=clk,
                                revenue=rev)
            stats = client.stats()
    experiment = stats["experiment"]
    if args.shadow:
        mode = "shadow"
    elif canary_steps:
        mode = f"canary {args.canary_steps}"
    else:
        mode = f"{args.challenger_fraction:.0%} split"
    lift_rows = []
    for metric in ("ctr", "ppc", "rpm"):
        base = experiment["variants"][control_name][metric]
        treatment = experiment["variants"][challenger_name][metric]
        lift = 0.0 if base == 0 else (treatment - base) / base * 100.0
        lift_rows.append({"metric": metric.upper(), control_name: base,
                          challenger_name: treatment,
                          "lift_pct": round(lift, 3)})
    print(format_table(
        lift_rows, title=f"Online metrics, {challenger_name} vs "
                         f"{control_name} ({mode})"))
    variant_rows = [{
        "variant": name,
        "fraction": experiment["fractions"][name],
        "assigned": row["assigned"],
        "served": row["served"],
        "shadow_served": row["shadow_served"],
        "feedback": row["feedback"],
        "impressions": row["impressions"],
    } for name, row in experiment["variants"].items()]
    print(format_table(variant_rows, title="Per-variant serving accounting"))
    canary = experiment.get("canary")
    if canary is not None:
        print(f"canary: state={canary['state']} step={canary['step']} "
              f"fraction={canary['fraction']:g}")
        if canary["rollback_reason"]:
            print(f"canary rollback: {canary['rollback_reason']}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    if args.replay_fraction <= 0 or args.replay_fraction >= 1:
        raise SystemExit("--replay-fraction must be in (0, 1)")
    from repro.data import split_sessions_at
    from repro.faults import InjectedFault
    from repro.streaming import ReplayDriver

    source = load_dataset("synthetic-taobao", scale=args.scale)
    warm, tail = split_sessions_at(source.sessions, 1 - args.replay_fraction)
    spec = ExperimentSpec(
        dataset=DataSpec(name="behavior-logs",
                         params={"sessions": warm, "seed": args.seed},
                         train_fraction=0.9,
                         max_train_examples=args.max_examples,
                         max_test_examples=0),
        model=ModelSpec(name=args.model,
                        embedding_dim=args.embedding_dim,
                        fanouts=(args.fanout, max(args.fanout // 2, 1))),
        training=TrainSpec(epochs=args.epochs, batch_size=args.batch_size,
                           learning_rate=args.learning_rate, loss="focal",
                           max_batches_per_epoch=6, seed=0),
        serving=ServingSpec(ann_cells=8, warm_users=20, warm_queries=20),
        streaming=StreamingSpec(micro_batch_size=args.micro_batch_size,
                                refresh_every=args.refresh_every,
                                wal_path=args.wal or None),
        lifecycle=LifecycleSpec(
            enabled=args.half_life > 0 or args.node_ttl > 0,
            half_life=args.half_life, edge_ttl=args.edge_ttl,
            node_ttl=args.node_ttl, compact_every=args.compact_every),
        parallel=_parallel_from_args(args),
        seed=args.seed)
    with _pipeline_or_exit(spec) as pipeline:
        pipeline.deploy()
        before = pipeline.graph.summary()
        plan = _fault_plan_from_args(args, spec)
        try:
            with plan.armed() if plan is not None else nullcontext():
                report = ReplayDriver(pipeline).replay(tail)
        except InjectedFault as error:
            print(f"ingest crashed: {error}", file=sys.stderr)
            if args.wal:
                from repro.data import IngestJournal
                journal = IngestJournal(args.wal)
                print(f"write-ahead log {args.wal!r} holds {len(journal)} "
                      f"journaled micro-batch(es); a fresh pipeline with "
                      f"this spec recovers them via "
                      f"Pipeline.recover_from_wal()", file=sys.stderr)
            return 1
        after = pipeline.graph.summary()
        ingest = report.ingest
        rows = [
            {"measurement": "replayed events", "value": ingest.events},
            {"measurement": "micro-batches applied",
             "value": ingest.micro_batches},
            {"measurement": "server refreshes", "value": ingest.refreshes},
            {"measurement": "failed refreshes",
             "value": ingest.failed_refreshes},
            {"measurement": "micro-batches journaled",
             "value": ingest.journaled_batches},
            {"measurement": "edges appended", "value": ingest.new_edges},
            {"measurement": "nodes appended",
             "value": sum(ingest.new_nodes.values())},
            {"measurement": "cache keys invalidated",
             "value": ingest.invalidated_cache_keys},
            {"measurement": "postings refreshed",
             "value": ingest.refreshed_postings},
            {"measurement": "compaction passes", "value": ingest.compactions},
            {"measurement": "nodes evicted", "value": ingest.evicted_nodes},
            {"measurement": "edges removed", "value": ingest.removed_edges},
            {"measurement": "graph version", "value": ingest.graph_version},
            {"measurement": "events/second", "value": round(
                report.events_per_second, 1)},
        ]
        print(format_table(rows,
                           title=f"Streaming ingest of {len(tail)} events "
                                 f"({before['total_edges']} -> "
                                 f"{after['total_edges']} edges)"))
        if plan is not None:
            print(format_table(_fault_rows(plan),
                               title="Fault injection accounting"))
        # The refreshed server keeps serving, including for nodes the stream
        # introduced.
        results = pipeline.server.serve_batch(
            [(s.user_id, s.query_id) for s in tail[:4]], k=5)
        rows = [{"user": r.user_id, "query": r.query_id,
                 "top_items": " ".join(str(int(i)) for i in r.item_ids[:5]),
                 "via_index": r.from_inverted_index} for r in results]
        print(format_table(rows,
                           title="Post-ingest serving of streamed requests"))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.serving.daemon import DaemonClient
    from repro.serving.loadgen import OpenLoopLoadGenerator

    if args.requests < 1:
        raise SystemExit("--requests must be at least 1")
    spec = _spec_from_args(
        args,
        max_test_examples=0,
        training=TrainSpec(epochs=1, batch_size=args.batch_size,
                           learning_rate=args.learning_rate, loss="focal",
                           max_batches_per_epoch=6, seed=0),
        serving=ServingSpec(cache_capacity=30, ann_cells=8,
                            warm_users=20, warm_queries=20))
    try:
        spec.daemon = DaemonSpec(port=0,
                                 max_queue_depth=args.queue_depth).validate()
    except ValueError as error:
        raise SystemExit(str(error))
    plan = _fault_plan_from_args(args, spec)
    if plan is None:
        raise SystemExit("chaos needs a fault plan: pass --fault-plan "
                         "'{\"worker.crash\": {\"at\": [2]}}' (or declare a "
                         "faults section in the spec)")
    with _pipeline_or_exit(spec) as pipeline:
        deployment = pipeline.deploy()
        engine = pipeline.parallel_engine()
        with deployment.daemon() as daemon:
            graph = pipeline.graph
            generator = OpenLoopLoadGenerator(
                daemon.host, daemon.port, qps=args.qps,
                num_requests=args.requests,
                num_users=graph.num_nodes[pipeline.model.user_type],
                num_queries=graph.num_nodes[pipeline.model.query_node_type()],
                seed=args.seed)
            # Armed only around the drive: fault occurrence counters start
            # at the first load-time event, so a fixed plan + seed replays
            # the identical fault sequence run over run.
            with plan.armed():
                report = generator.run()
            with DaemonClient(daemon.host, daemon.port) as client:
                stats = client.stats()
        pool = engine.pool_stats if engine is not None else None
        pool_degraded = bool(engine.degraded) if engine is not None else False
        downgrade_reason = engine.downgrade_reason if engine is not None \
            else ""
    summary = report.to_dict()
    rows = [{"measurement": key, "value": value}
            for key, value in summary.items()
            if key not in ("latency_ms", "errors_by_class")]
    rows += [{"measurement": f"errors: {name}", "value": value}
             for name, value in summary["errors_by_class"].items()]
    rows += [{"measurement": f"latency {name} (ms)", "value": value}
             for name, value in summary["latency_ms"].items()]
    print(format_table(rows, title=f"Chaos drive at {args.qps} QPS "
                                   f"({args.requests} requests)"))
    print(format_table(_fault_rows(plan), title="Fault injection accounting"))
    lost = (report.sent - report.served - report.shed - report.quota
            - report.draining - report.errors)
    server_degraded = bool(stats.get("server", {}).get("degraded", False))
    recovery = [
        {"measurement": "faults fired", "value": len(plan.fired)},
        {"measurement": "crashes recovered",
         "value": pool.crashes_recovered if pool is not None else 0},
        {"measurement": "workers respawned",
         "value": pool.workers_respawned if pool is not None else 0},
        {"measurement": "tasks resubmitted",
         "value": pool.tasks_resubmitted if pool is not None else 0},
        {"measurement": "pool degraded to serial", "value": pool_degraded},
        {"measurement": "server degraded", "value": server_degraded},
        {"measurement": "requests lost", "value": lost},
    ]
    print(format_table(recovery, title="Recovery accounting"))
    if pool_degraded:
        print(f"downgrade reason: {downgrade_reason}")
    if args.expect_zero_lost:
        unserved = report.sent - report.served
        if unserved or report.errors or pool_degraded or server_degraded:
            print("FAIL: expected every request served on a healthy stack, "
                  f"got served={report.served}/{report.sent} "
                  f"errors={report.errors} pool_degraded={pool_degraded} "
                  f"server_degraded={server_degraded}", file=sys.stderr)
            return 1
        print(f"chaos: {report.served}/{report.sent} served, "
              f"{len(plan.fired)} fault(s) fired and recovered")
    return 0


def _cmd_motivation(args: argparse.Namespace) -> int:
    dataset = load_dataset("synthetic-taobao", scale=args.scale)
    drift = successive_query_similarities(dataset, max_users=10, seed=args.seed)
    values = [s for sims in drift.values() for s in sims]
    short = focal_local_similarity_cdf(dataset, history_sessions=1, num_users=10,
                                       seed=args.seed)
    long = focal_local_similarity_cdf(dataset, history_sessions=None,
                                      num_users=10, seed=args.seed)
    rows = [
        {"measurement": "mean successive-query similarity (Fig. 4b)",
         "value": round(float(np.mean(values)), 3) if values else 0.0},
        {"measurement": "short-window history below 0.5 similarity (Fig. 4c)",
         "value": round(fraction_below(short, 0.5), 3)},
        {"measurement": "long-window history below 0.5 similarity (Fig. 4c)",
         "value": round(fraction_below(long, 0.5), 3)},
    ]
    print(format_table(rows, title="Information-overload measurements"))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import runner

    if args.list_rules:
        return runner.list_rules()
    try:
        return runner.run_lint(paths=args.paths or None, fmt=args.format,
                               select=args.select)
    except ValueError as error:
        # Unknown --select rule names; the message lists the known ones.
        raise SystemExit(str(error))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Zoomer reproduction command-line interface")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--scale", default="million",
                         choices=["million", "hundred-million", "billion"],
                         help="synthetic dataset scale preset")
        sub.add_argument("--model", default="zoomer",
                         help="zoomer or a baseline name (e.g. PinSage); any "
                              "name in the repro.api model registry works")
        sub.add_argument("--epochs", type=int, default=1)
        sub.add_argument("--batch-size", type=int, default=64)
        sub.add_argument("--learning-rate", type=float, default=0.03)
        sub.add_argument("--fanout", type=int, default=5)
        sub.add_argument("--embedding-dim", type=int, default=16)
        sub.add_argument("--max-examples", type=int, default=800)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--num-workers", type=int, default=0,
                         help="fan sampling/serving/ingest work across N "
                              "worker processes over a shared-memory graph "
                              "store (0 = single-core legacy path); results "
                              "are bit-identical for any worker count")
        sub.add_argument("--parallel-backend", default="shared",
                         choices=["serial", "shared"],
                         help="'shared' spawns real worker processes; "
                              "'serial' runs the same shard tasks "
                              "in-process (debugging / equivalence runs)")

    train_parser = subparsers.add_parser("train", help="train and evaluate")
    add_common(train_parser)
    train_parser.set_defaults(func=_cmd_train)

    serve_parser = subparsers.add_parser("serve", help="serving QPS sweep")
    add_common(serve_parser)
    serve_parser.add_argument("--num-shards", type=int, default=1,
                              help="partition the item corpus across N ANN "
                                   "shards with per-shard top-k merging")
    serve_parser.add_argument("--serve-batch-size", type=int, default=32,
                              help="micro-batch size for the batched serving "
                                   "path; >1 also prints a batch-size vs "
                                   "latency sweep")
    serve_parser.set_defaults(func=_cmd_serve)

    daemon_parser = subparsers.add_parser(
        "daemon", help="train briefly, deploy, and serve over TCP "
                       "(newline-delimited JSON) with admission control")
    add_common(daemon_parser)
    daemon_parser.add_argument("--host", default="127.0.0.1")
    daemon_parser.add_argument("--port", type=int, default=0,
                               help="0 picks an ephemeral port")
    daemon_parser.add_argument("--serve-batch-size", type=int, default=32,
                               help="micro-batch size of the daemon's "
                                    "dispatch loop")
    daemon_parser.add_argument("--max-wait-ms", type=float, default=5.0,
                               help="max time a partial batch may wait")
    daemon_parser.add_argument("--queue-depth", type=int, default=128,
                               help="admitted-but-unserved requests before "
                                    "load shedding kicks in")
    daemon_parser.add_argument("--shed-policy", default="reject",
                               choices=["reject", "drop-oldest"])
    daemon_parser.add_argument("--self-drive", type=int, default=0,
                               metavar="N",
                               help="instead of serving forever, fire N "
                                    "open-loop Poisson requests at --qps, "
                                    "print the latency/shed report, drain, "
                                    "and exit")
    daemon_parser.add_argument("--qps", type=float, default=200.0,
                               help="offered load for --self-drive")
    daemon_parser.add_argument("--expect-zero-shed", action="store_true",
                               help="exit non-zero if the self-drive run "
                                    "sheds or errors (CI smoke check)")
    daemon_parser.add_argument("--fault-plan", default="", metavar="JSON",
                               help="arm a seeded fault plan around the "
                                    "daemon, e.g. "
                                    "'{\"net.stall\": {\"at\": [3]}}'; "
                                    "see repro.faults.KNOWN_SITES")
    daemon_parser.set_defaults(func=_cmd_daemon)

    chaos_parser = subparsers.add_parser(
        "chaos", help="fault-injection drill: deploy on a worker pool, arm "
                      "a seeded fault plan, drive open-loop load, and print "
                      "the recovery accounting")
    add_common(chaos_parser)
    chaos_parser.set_defaults(num_workers=2)
    chaos_parser.add_argument("--requests", type=int, default=200,
                              help="open-loop requests to drive through the "
                                   "daemon while the plan is armed")
    chaos_parser.add_argument("--qps", type=float, default=100.0,
                              help="offered load for the chaos drive")
    chaos_parser.add_argument("--queue-depth", type=int, default=256,
                              help="daemon admission-queue depth")
    chaos_parser.add_argument("--fault-plan",
                              default='{"worker.crash": {"at": [2]}}',
                              metavar="JSON",
                              help="the plan to arm (site -> rule mapping "
                                   "or the full to_dict form); see "
                                   "repro.faults.KNOWN_SITES")
    chaos_parser.add_argument("--expect-zero-lost", action="store_true",
                              help="exit non-zero unless every request was "
                                   "served, zero transport errors, and the "
                                   "pool/server came back non-degraded "
                                   "(CI smoke check)")
    chaos_parser.set_defaults(func=_cmd_chaos)

    experiment_parser = subparsers.add_parser(
        "experiment", help="online-experimentation demo: control and "
                           "challenger models behind one daemon with a "
                           "deterministic split, shadow traffic, or a "
                           "canary ramp (Table IV-style lift report)")
    add_common(experiment_parser)
    experiment_parser.set_defaults(model="pinsage")
    experiment_parser.add_argument("--challenger-model", default="zoomer",
                                   help="registry name of the challenger "
                                        "(the control is --model)")
    experiment_parser.add_argument("--requests", type=int, default=120,
                                   help="simulated serve+feedback requests "
                                        "to drive through the daemon")
    experiment_parser.add_argument("--challenger-fraction", type=float,
                                   default=0.5,
                                   help="challenger traffic share for the "
                                        "plain split mode (the paper used "
                                        "0.04 of live search traffic)")
    experiment_parser.add_argument("--shadow", action="store_true",
                                   help="shadow mode: the challenger scores "
                                        "a copy of every request off the "
                                        "reply path; replies stay "
                                        "bit-identical to single-version "
                                        "serving")
    experiment_parser.add_argument("--canary-steps", default="",
                                   metavar="F1,F2,...",
                                   help="canary mode: ramp the challenger "
                                        "through these increasing traffic "
                                        "fractions with guardrail-triggered "
                                        "rollback")
    experiment_parser.add_argument("--salt", default="cli-exp",
                                   help="experiment salt; the user->variant "
                                        "split is a pure function of "
                                        "(salt, fractions, user_id)")
    experiment_parser.set_defaults(func=_cmd_experiment)

    ingest_parser = subparsers.add_parser(
        "ingest", help="streaming-ingest demo: replay a behavior log "
                       "against a live deployed pipeline")
    add_common(ingest_parser)
    ingest_parser.add_argument("--replay-fraction", type=float, default=0.3,
                               help="fraction of the session log (by "
                                    "timestamp) replayed as the live stream; "
                                    "the rest builds the initial graph")
    ingest_parser.add_argument("--micro-batch-size", type=int, default=32,
                               help="sessions per applied graph update")
    ingest_parser.add_argument("--refresh-every", type=int, default=2,
                               help="server refresh cadence in micro-batches")
    ingest_parser.add_argument("--half-life", type=float, default=0.0,
                               help="edge-weight half-life in timestamp "
                                    "units; >0 enables lifecycle compaction "
                                    "(decay + TTL pruning) during the replay")
    ingest_parser.add_argument("--edge-ttl", type=float, default=0.0,
                               help="prune edges not reinforced for this "
                                    "long (needs --half-life)")
    ingest_parser.add_argument("--node-ttl", type=float, default=0.0,
                               help="tombstone nodes idle for this long; >0 "
                                    "enables lifecycle compaction")
    ingest_parser.add_argument("--compact-every", type=int, default=4,
                               help="compaction cadence in micro-batches")
    ingest_parser.add_argument("--wal", default="", metavar="PATH",
                               help="journal every micro-batch to this "
                                    "write-ahead log before applying it; a "
                                    "crashed replay is recoverable via "
                                    "Pipeline.recover_from_wal()")
    ingest_parser.add_argument("--fault-plan", default="", metavar="JSON",
                               help="arm a seeded fault plan around the "
                                    "replay, e.g. "
                                    "'{\"ingest.crash\": {\"at\": [1]}}'; "
                                    "see repro.faults.KNOWN_SITES")
    ingest_parser.set_defaults(func=_cmd_ingest)

    motivation_parser = subparsers.add_parser(
        "motivation", help="information-overload measurements (Fig. 4)")
    add_common(motivation_parser)
    motivation_parser.set_defaults(func=_cmd_motivation)

    lint_parser = subparsers.add_parser(
        "lint", help="repo-specific static analysis: the determinism, "
                     "concurrency, and shm contracts as AST rules")
    lint_parser.add_argument("paths", nargs="*",
                             help="files or directories to check "
                                  "(default: src benchmarks examples)")
    lint_parser.add_argument("--format", default="text",
                             choices=["text", "json"],
                             help="report format (json emits the full "
                                  "violation document)")
    lint_parser.add_argument("--select", nargs="+", metavar="RULE",
                             help="run only these rules (the SUP001 "
                                  "suppression audit always runs)")
    lint_parser.add_argument("--list-rules", action="store_true",
                             help="print every rule and the contract it "
                                  "guards, then exit")
    lint_parser.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
