"""Replay driver: feed behavior-log events through a live pipeline.

The paper's behavior graph is continuously fed by interaction logs; this
module replays a recorded log against a deployed
:class:`~repro.api.pipeline.Pipeline` the way production ingestion would see
it — events sorted by timestamp, grouped into micro-batches, applied to the
live graph and propagated to the serving layer on the spec's
:class:`~repro.api.spec.StreamingSpec` cadence::

    pipeline = Pipeline(spec)            # dataset = the warm prefix of a log
    pipeline.deploy()                    # train + stand up the server
    report = ReplayDriver(pipeline).replay(tail_sessions)

Used by ``python -m repro.cli ingest`` and ``examples/streaming_ingest.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.api.pipeline import IngestReport
from repro.data.logs import sessions_in_time_order

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.api.pipeline import Pipeline


@dataclass
class ReplayReport:
    """Outcome of one replay: the ingest report plus wall-clock throughput."""

    #: The underlying :class:`~repro.api.pipeline.IngestReport`.
    ingest: IngestReport
    #: Wall-clock seconds spent replaying.
    seconds: float

    @property
    def events_per_second(self) -> float:
        """Sustained ingest throughput over the whole replay."""
        return self.ingest.events / self.seconds if self.seconds > 0 else 0.0


class ReplayDriver:
    """Replays recorded sessions through :meth:`Pipeline.ingest` in time order."""

    def __init__(self, pipeline: "Pipeline"):
        """Bind the driver to a pipeline (deployed or not — both work)."""
        self.pipeline = pipeline

    def replay(self, sessions: Iterable, refresh: bool = True) -> ReplayReport:
        """Sort ``sessions`` by timestamp and stream them into the pipeline.

        The sort is stable, so events sharing a timestamp (or carrying
        none) keep their recorded order — replaying the same log twice is
        deterministic.  Micro-batch size and server-refresh cadence come
        from the pipeline spec's streaming section.
        """
        ordered: Sequence = sessions_in_time_order(sessions)
        start = time.perf_counter()
        ingest = self.pipeline.ingest(ordered, refresh=refresh)
        return ReplayReport(ingest=ingest,
                            seconds=time.perf_counter() - start)
