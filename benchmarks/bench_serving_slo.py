"""Serving-daemon SLO bench: latency under target QPS, shedding at overload.

The paper's serving tier holds its ~3 ms response time at thousands of QPS
because the front end batches, bounds its queues, and sheds what it cannot
serve (Section VI).  This bench drives the *real* asyncio daemon — sockets,
admission queue, timer-driven batching, graceful drain — with the open-loop
Poisson generator and pins the two SLO behaviours that matter:

* **Nominal load** (~60% utilisation): zero requests shed, and the measured
  median latency agrees with the M/M/1 prediction of
  :class:`~repro.serving.latency.LatencySimulator` once the simulator is
  calibrated from measured batch service times — the daemon is the queueing
  station the model says it is.
* **2x overload** (offered load above the measured capacity): the bounded
  admission queue sheds part of the traffic with 429s instead of letting
  latency diverge, every frame still gets exactly one response, and the
  daemon's counters reconcile with the generator's view.

The backend is deliberately throttled (an affine ``1 + 16*b`` ms sleep per
batch) so capacity is a known ~60 QPS at laptop scale and overload is real,
not a timing accident.  The envelope for the model cross-check is wide
([0.1x, 10x]) because a 1-CPU CI box serves the daemon, the generator, and
the throttle sleeps from one core; the check still catches the failure that
matters (queueing latency diverging from the model by an order of
magnitude).
"""

import time

from _common import RESULTS_DIR, quick_train
from repro.api.spec import DaemonSpec
from repro.core import ZoomerConfig, ZoomerModel
from repro.experiments import ExperimentResult, format_table, save_results
from repro.serving import (
    LatencySimulator,
    OnlineServer,
    OpenLoopLoadGenerator,
    ServingDaemon,
)

#: Affine throttle: one batch of ``b`` requests takes ``FIXED + PER_REQ*b``
#: milliseconds.  Per-request-dominated, so capacity (~1000/PER_REQ QPS) is
#: nearly independent of the realised batch size — overload stays overload
#: whether batches assemble full or partial.  The per-request cost is set
#: high enough (16 ms) that the ~2-4 ms of Python/socket CPU a 1-CPU CI box
#: spends per request stays a small fraction of the service time, keeping
#: the measured station close to the modelled one.
THROTTLE_FIXED_MS = 1.0
THROTTLE_PER_REQUEST_MS = 16.0

#: Throttled capacity is ~59-62 QPS for any realised batch size.
NOMINAL_QPS = 40.0      # ~0.65 utilisation: stable, must not shed
OVERLOAD_QPS = 80.0     # 2x nominal, ~1.3x capacity: must shed, boundedly

DAEMON_SPEC = dict(max_batch_size=8, max_wait_ms=4.0, max_queue_depth=24)


class ThrottledServer:
    """A serving backend with a known affine batch cost (sleep-injected)."""

    def __init__(self, server):
        self._server = server

    def serve_batch(self, requests, k=10):
        results = self._server.serve_batch(requests, k=k)
        time.sleep((THROTTLE_FIXED_MS
                    + THROTTLE_PER_REQUEST_MS * len(results)) / 1000.0)
        return results


def _deploy(bench_taobao) -> ThrottledServer:
    dataset, train, _ = bench_taobao
    model = ZoomerModel(dataset.graph,
                        ZoomerConfig(embedding_dim=16, fanouts=(5, 3),
                                     seed=0))
    quick_train(model, train[:300], max_batches=4)
    server = OnlineServer(model, cache_capacity=30, ann_cells=8, ann_nprobe=3)
    server.warm_caches(range(min(20, dataset.config.num_users)),
                       range(min(20, dataset.config.num_queries)))
    server.build_inverted_index(range(min(20, dataset.config.num_queries)))
    return ThrottledServer(server)


def _loadgen(daemon, dataset, qps, num_requests, seed):
    return OpenLoopLoadGenerator(
        daemon.host, daemon.port, qps=qps, num_requests=num_requests,
        num_users=dataset.config.num_users,
        num_queries=dataset.config.num_queries, k=5, seed=seed)


def test_slo_nominal_load_smoke(benchmark, bench_taobao):
    """Zero-shed and model-consistent latency at ~60% utilisation."""
    dataset = bench_taobao[0]
    backend = _deploy(bench_taobao)

    def run():
        with ServingDaemon(backend,
                           spec=DaemonSpec(**DAEMON_SPEC)) as daemon:
            report = _loadgen(daemon, dataset, NOMINAL_QPS,
                              num_requests=120, seed=42).run()
            mean_batch = daemon.batcher.stats.mean_batch_size
        # Calibrate the queueing model from directly measured batch service
        # times of the same backend, then predict the response time at the
        # batch size the daemon actually realised.
        sizes, measured_ms = [1, 4, 8], []
        calibration = [(s.user_id, s.query_id) for s in dataset.sessions[:8]]
        for size in sizes:
            start = time.perf_counter()
            backend.serve_batch(calibration[:size], k=5)
            measured_ms.append((time.perf_counter() - start) * 1000.0)
        simulator = LatencySimulator(num_servers=1)
        simulator.calibrate_batch_profile(sizes, measured_ms)
        predicted_ms = simulator.batched_response_ms(
            NOMINAL_QPS, max(1, round(mean_batch)))
        return report, mean_batch, predicted_ms

    report, mean_batch, predicted_ms = benchmark.pedantic(run, rounds=1,
                                                          iterations=1)
    summary = report.to_dict()
    rows = [{"measurement": key, "value": value}
            for key, value in summary.items() if key != "latency_ms"]
    rows += [{"measurement": f"latency {name} (ms)", "value": value}
             for name, value in summary["latency_ms"].items()]
    rows.append({"measurement": "mean batch size", "value": round(mean_batch, 2)})
    rows.append({"measurement": "predicted response (ms)",
                 "value": round(predicted_ms, 2)})
    print()
    print(format_table(rows, title=f"Daemon SLO at nominal {NOMINAL_QPS} QPS"))

    assert report.sent == 120
    assert report.served == 120, "nominal load must not shed or error"
    assert report.shed == 0 and report.quota == 0 and report.errors == 0
    assert report.p50_ms > 0.0
    # Cross-validation against the M/M/1 model (wide 1-CPU envelope).
    assert 0.1 * predicted_ms < report.p50_ms < 10.0 * predicted_ms, \
        f"measured p50 {report.p50_ms:.1f} ms vs predicted {predicted_ms:.1f} ms"
    save_results([ExperimentResult(
        "serving_slo", "Daemon latency SLO at nominal load", rows=rows,
        paper_reference={"claim": "bounded queues keep serving latency flat "
                                  "at target QPS"})], RESULTS_DIR)


def test_slo_overload_sheds_boundedly(benchmark, bench_taobao):
    """2x nominal offered load: bounded shedding, no silent drops."""
    dataset = bench_taobao[0]
    backend = _deploy(bench_taobao)

    def run():
        with ServingDaemon(backend,
                           spec=DaemonSpec(**DAEMON_SPEC)) as daemon:
            report = _loadgen(daemon, dataset, OVERLOAD_QPS,
                              num_requests=160, seed=43).run()
            stats = daemon.stats
        return report, stats

    report, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = report.to_dict()
    rows = [{"measurement": key, "value": value}
            for key, value in summary.items() if key != "latency_ms"]
    print()
    print(format_table(rows, title=f"Daemon SLO at {OVERLOAD_QPS} QPS "
                                   f"(2x nominal, above capacity)"))

    assert report.sent == 160
    assert report.errors == 0, "overload must shed with 429s, not break"
    assert report.sent == report.served + report.shed + report.quota \
        + report.draining
    assert report.shed > 0, "offered load above capacity must shed"
    assert report.shed_fraction < 0.9, "shedding must be bounded, not total"
    assert report.served > 0
    # The daemon's own counters agree with the generator's view.
    assert stats.shed_queue == report.shed
    assert stats.served == report.served
    assert stats.received == report.sent
    save_results([ExperimentResult(
        "serving_slo_overload", "Daemon shedding at 2x overload", rows=rows,
        paper_reference={"claim": "admission control sheds excess load "
                                  "instead of letting latency diverge"})],
        RESULTS_DIR)
