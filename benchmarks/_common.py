"""Shared helpers for the benchmark harness (datasets, budgets, training).

Every benchmark reproduces one table or figure of the paper (see DESIGN.md's
per-experiment index).  Benchmarks run on laptop-scale synthetic datasets, so
absolute numbers differ from the paper; what each benchmark checks and reports
is the *shape* of the result (who wins, by roughly what factor, where the
trends bend).  Each benchmark prints a formatted table (run with ``-s`` to see
it) and saves a JSON artifact under ``benchmark_results/``.

Benchmarks are thin spec-plus-loop drivers: models are constructed by name
through :func:`repro.api.build_model` (the registry the CLI and examples use
too), and trained with the shared :func:`quick_train` budget below.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.models.base import RetrievalModel
from repro.training import Trainer, TrainingConfig

#: Directory where benchmark artifacts (JSON result rows) are written.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmark_results")

#: Bench-scale training budget; raise these environment variables for longer
#: (closer-to-paper) runs.
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "1"))
BENCH_TRAIN_EXAMPLES = int(os.environ.get("REPRO_BENCH_TRAIN_EXAMPLES", "700"))
BENCH_TEST_EXAMPLES = int(os.environ.get("REPRO_BENCH_TEST_EXAMPLES", "300"))


def quick_train(model: RetrievalModel, train, test=None,
                epochs: int = BENCH_EPOCHS, learning_rate: float = 0.03,
                batch_size: int = 64, max_batches: Optional[int] = None,
                target_auc: Optional[float] = None):
    """Train a model with the benchmark budget; returns (trainer, result)."""
    trainer = Trainer(model, TrainingConfig(
        epochs=epochs, batch_size=batch_size, learning_rate=learning_rate,
        loss="focal", max_batches_per_epoch=max_batches))
    result = trainer.train(train, test, target_auc=target_auc)
    return trainer, result
