"""Online-experimentation bench: shadow traffic must ride (nearly) free.

The serving-time experimentation tier (``repro.serving.experiment``) promises
that **shadow mode** scores the challenger off the reply path: primary
replies are bit-identical to single-version serving and — the SLO half of
that promise, pinned here — primary *latency* is not materially worse
either, because shadow copies are dispatched only after the reply path has
resolved and written its frames.

The smoke run drives the same open-loop Poisson request stream (same seed)
against a single-version daemon and against a two-variant shadow daemon over
identically built servers, at a nominal QPS far below capacity, and pins:

* zero shed / quota / errors on both runs,
* the challenger shadow-scored every admitted request,
* shadow-mode primary p50 within 20% of the single-version p50 (plus a
  small absolute epsilon, since on a 1-CPU CI box both p50s are a few
  milliseconds and timer quantization alone moves them fractions of one).
"""

from _common import RESULTS_DIR, quick_train
from repro.api.spec import DaemonSpec, ExperimentTierSpec
from repro.core import ZoomerConfig, ZoomerModel
from repro.experiments import ExperimentResult, format_table, save_results
from repro.serving import (
    ExperimentTier,
    OnlineServer,
    OpenLoopLoadGenerator,
    ServingDaemon,
)

#: Far below the unthrottled backend's capacity: random (partly cold-cache)
#: requests cost ~5 ms each on a CI box, so 25 QPS keeps the single-version
#: run near 0.15 utilisation and the shadow run — whose challenger copies
#: double the backend work — near 0.3, and both measure dispatch overhead,
#: not queueing.
NOMINAL_QPS = 25.0
NUM_REQUESTS = 100
LOAD_SEED = 42

#: The smoke floor: shadow p50 <= 1.2x single-version p50 + 2 ms.  The
#: relative bound is the tier's contract; the absolute epsilon absorbs
#: scheduler/timer quantization on a 1-CPU CI box where p50 is only a few
#: milliseconds to begin with.
SHADOW_P50_FACTOR = 1.2
SHADOW_P50_EPSILON_MS = 2.0

DAEMON_SPEC = dict(max_batch_size=8, max_wait_ms=4.0, max_queue_depth=48)


def _deploy(bench_taobao, seed: int) -> OnlineServer:
    """A quickly trained, warmed server; same recipe for every variant."""
    dataset, train, _ = bench_taobao
    model = ZoomerModel(dataset.graph,
                        ZoomerConfig(embedding_dim=16, fanouts=(5, 3),
                                     seed=seed))
    quick_train(model, train[:300], max_batches=4)
    server = OnlineServer(model, cache_capacity=30, ann_cells=8, ann_nprobe=3)
    server.warm_caches(range(min(20, dataset.config.num_users)),
                       range(min(20, dataset.config.num_queries)))
    server.build_inverted_index(range(min(20, dataset.config.num_queries)))
    return server


def _drive(daemon: ServingDaemon, dataset):
    with daemon:
        report = OpenLoopLoadGenerator(
            daemon.host, daemon.port, qps=NOMINAL_QPS,
            num_requests=NUM_REQUESTS, num_users=dataset.config.num_users,
            num_queries=dataset.config.num_queries, k=5,
            seed=LOAD_SEED).run()
        stats = daemon.stats_dict()
    return report, stats


def test_shadow_overhead_smoke(benchmark, bench_taobao):
    """Shadow-mode primary p50 stays within the floor of single-version p50."""
    dataset = bench_taobao[0]
    control = _deploy(bench_taobao, seed=0)
    challenger = _deploy(bench_taobao, seed=1)

    def run():
        base_report, _ = _drive(
            ServingDaemon(control, spec=DaemonSpec(**DAEMON_SPEC)), dataset)
        tier = ExperimentTier(
            {"control": control, "challenger": challenger},
            ExperimentTierSpec(variants=("control", "challenger"),
                               salt="bench-ab", shadow=True))
        shadow_report, shadow_stats = _drive(
            ServingDaemon(spec=DaemonSpec(**DAEMON_SPEC), experiment=tier),
            dataset)
        return base_report, shadow_report, shadow_stats

    base_report, shadow_report, shadow_stats = benchmark.pedantic(
        run, rounds=1, iterations=1)

    rows = [
        {"measurement": "single-version p50 (ms)",
         "value": round(base_report.p50_ms, 3)},
        {"measurement": "shadow-mode p50 (ms)",
         "value": round(shadow_report.p50_ms, 3)},
        {"measurement": "single-version p99 (ms)",
         "value": round(base_report.percentile_ms(99), 3)},
        {"measurement": "shadow-mode p99 (ms)",
         "value": round(shadow_report.percentile_ms(99), 3)},
        {"measurement": "shadow copies scored",
         "value": shadow_stats["experiment"]["variants"]["challenger"]
                  ["shadow_served"]},
        {"measurement": "p50 floor (ms)",
         "value": round(SHADOW_P50_FACTOR * base_report.p50_ms
                        + SHADOW_P50_EPSILON_MS, 3)},
    ]
    print()
    print(format_table(rows, title=f"Shadow-traffic overhead at "
                                   f"{NOMINAL_QPS:g} QPS"))

    for report in (base_report, shadow_report):
        assert report.sent == NUM_REQUESTS
        assert report.served == NUM_REQUESTS, \
            "nominal load must not shed or error"
        assert report.shed == report.quota == report.errors == 0
        assert report.p50_ms > 0.0
    variants = shadow_stats["experiment"]["variants"]
    assert variants["challenger"]["shadow_served"] == NUM_REQUESTS
    assert variants["control"]["served"] == NUM_REQUESTS
    assert variants["challenger"]["served"] == 0
    assert shadow_report.p50_ms <= SHADOW_P50_FACTOR * base_report.p50_ms \
        + SHADOW_P50_EPSILON_MS, \
        (f"shadow p50 {shadow_report.p50_ms:.2f} ms exceeds the floor "
         f"{SHADOW_P50_FACTOR}x base {base_report.p50_ms:.2f} ms "
         f"+ {SHADOW_P50_EPSILON_MS} ms")
    save_results([ExperimentResult(
        "serving_ab_shadow", "Shadow-traffic latency overhead", rows=rows,
        paper_reference={"claim": "challenger scoring off the reply path "
                                  "leaves primary serving latency intact"})],
        RESULTS_DIR)
