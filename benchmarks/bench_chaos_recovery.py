"""Chaos-recovery bench: a worker crash mid-drive must cost zero requests.

The paper's serving tier stays online while individual components fail
(Section VI): the worker pool supervises crashes (respawn + bit-identical
resubmit) and the daemon keeps answering from the healthy remainder.  This
bench drives the *full* stack — parallel engine, asyncio daemon, open-loop
generator — twice under the identical seed and load:

* **Clean run** — no fault plan; the baseline latency profile.
* **Faulted run** — a deterministic :class:`~repro.faults.FaultPlan` kills
  one worker at the third pool submit (``worker.crash`` at occurrence 2).

The checks that matter: the faulted run serves every request (zero lost,
zero errors), the supervisor recovers exactly the injected crash, the pool
re-converges without downgrading to the serial backend, and the recovery
detour stays within a generous latency envelope of the clean run (a 1-CPU
CI box pays the respawn fork cost on the serving path).
"""

from _common import RESULTS_DIR
from repro.api import (
    DaemonSpec,
    DataSpec,
    ExperimentSpec,
    ParallelSpec,
    Pipeline,
    ServingSpec,
    TrainSpec,
)
from repro.experiments import ExperimentResult, format_table, save_results
from repro.faults import FaultPlan
from repro.serving import OpenLoopLoadGenerator

QPS = 60.0
NUM_REQUESTS = 120
CRASH_PLAN = {"worker.crash": {"at": [2]}}


def _spec() -> ExperimentSpec:
    return ExperimentSpec(
        dataset=DataSpec(params={"num_users": 40, "num_queries": 32,
                                 "num_items": 90, "sessions_per_user": 5.0},
                         max_train_examples=200, max_test_examples=0),
        training=TrainSpec(epochs=1, max_batches_per_epoch=6, batch_size=64),
        serving=ServingSpec(cache_capacity=30, ann_cells=8,
                            warm_users=20, warm_queries=20),
        parallel=ParallelSpec(num_workers=2, backend="shared"),
        daemon=DaemonSpec(port=0, max_queue_depth=256),
        seed=0)


def _drive(plan):
    """Deploy a fresh stack, drive it (optionally under ``plan``), report."""
    with Pipeline(_spec()) as pipeline:
        deployment = pipeline.deploy()
        engine = pipeline.parallel_engine()
        with deployment.daemon() as daemon:
            graph = pipeline.graph
            generator = OpenLoopLoadGenerator(
                daemon.host, daemon.port, qps=QPS,
                num_requests=NUM_REQUESTS,
                num_users=graph.num_nodes[pipeline.model.user_type],
                num_queries=graph.num_nodes[pipeline.model.query_node_type()],
                seed=7)
            if plan is None:
                report = generator.run()
            else:
                # Armed only around the drive, exactly like ``repro.cli
                # chaos``: occurrence counters start at the first load-time
                # pool submit, so the crash lands at the same request every
                # run.
                with plan.armed():
                    report = generator.run()
        stats = engine.pool_stats
        return report, stats, bool(engine.degraded)


def test_chaos_recovery_smoke(benchmark):
    """A supervised worker crash loses nothing and re-converges."""

    def run():
        clean = _drive(None)
        plan = FaultPlan(CRASH_PLAN, seed=0)
        faulted = _drive(plan)
        return clean, faulted, plan

    (clean, faulted, plan) = benchmark.pedantic(run, rounds=1, iterations=1)
    clean_report, clean_stats, clean_degraded = clean
    faulted_report, faulted_stats, faulted_degraded = faulted

    rows = []
    for name, report, stats in (("clean", clean_report, clean_stats),
                                ("faulted", faulted_report, faulted_stats)):
        summary = report.to_dict()
        rows.append({
            "run": name, "sent": report.sent, "served": report.served,
            "errors": report.errors,
            "p50_ms": summary["latency_ms"]["p50"],
            "p99_ms": summary["latency_ms"]["p99"],
            "crashes_recovered": stats.crashes_recovered,
            "tasks_resubmitted": stats.tasks_resubmitted,
        })
    print()
    print(format_table(rows, title=f"Chaos recovery at {QPS} QPS "
                                   f"({NUM_REQUESTS} requests, "
                                   f"worker.crash at occurrence 2)"))

    # The clean baseline really is clean.
    assert clean_report.served == clean_report.sent == NUM_REQUESTS
    assert clean_report.errors == 0
    assert clean_stats.crashes_recovered == 0 and not clean_degraded

    # The injected crash fired, was recovered, and cost nothing.
    assert plan.fired == [("worker.crash", 2)]
    assert faulted_stats.faults_injected == 1
    assert faulted_stats.crashes_recovered == 1
    assert faulted_stats.tasks_resubmitted >= 1
    assert faulted_report.served == faulted_report.sent == NUM_REQUESTS, \
        "a supervised crash must not lose or error a single request"
    assert faulted_report.errors == 0
    assert not faulted_degraded, \
        "one crash is within the retry budget; the pool must re-converge"

    # Recovery detour bounded: generous envelope for 1-CPU CI respawns.
    clean_p99 = clean_report.to_dict()["latency_ms"]["p99"]
    faulted_p99 = faulted_report.to_dict()["latency_ms"]["p99"]
    assert faulted_p99 <= max(20.0 * clean_p99, 6000.0), \
        f"recovery detour too slow: p99 {faulted_p99:.1f} ms " \
        f"vs clean {clean_p99:.1f} ms"

    save_results([ExperimentResult(
        "chaos_recovery", "Worker-crash recovery under open-loop load",
        rows=rows,
        paper_reference={"claim": "the serving tier stays online while "
                                  "individual components fail"})],
        RESULTS_DIR)
