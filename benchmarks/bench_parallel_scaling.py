"""Multi-core scaling floors for the parallel execution engine.

Three hot paths run the same shard-keyed work on ``backend="serial"``
(in-process reference) and ``backend="shared"`` (spawned worker pool over a
shared-memory graph/index store), and the bench pins both the speed and the
bits:

* **sampling** — training-side ``sample_subgraph_batch`` over a relation-
  scale graph, the per-shard draws fanned across workers,
* **serving** — the batched serving path's ANN stage: the request matrix
  partitioned round-robin across workers, each searching the shared
  float32 IVF index, padded top-k blocks merged back,
* **ingest** — the streaming write path's scoped ``BatchedAliasTable``
  rebuild, the touched rows' alias construction fanned across workers.

Floors (only asserted when the machine has at least as many usable cores as
workers — ``os.sched_getaffinity`` — since a worker pool cannot beat serial
on cores it does not have; rows are measured and saved regardless):

* CI-safe smoke: >= 1.5x at 2 workers (sampling and serving),
* full suite:    >= 2.5x at 4 workers (sampling and serving).

Every measured configuration also re-checks bit-identity against the serial
backend, so the speed never buys drift.  The consolidated
``benchmark_results/parallel_scaling.json`` artifact records workers ->
throughput for all three paths.
"""

import os
import time

import numpy as np

from _common import RESULTS_DIR
from repro.data import SyntheticTaobaoConfig, generate_taobao_dataset
from repro.experiments import ExperimentResult, format_table, save_results
from repro.graph.alias import BatchedAliasTable
from repro.parallel import ParallelEngine, SerialExecutor, WorkerPool
from repro.serving.ann import IVFIndex

#: Pinned floors: parallel vs serial throughput at matching shard plans.
SMOKE_FLOOR_2_WORKERS = 1.5
FULL_FLOOR_4_WORKERS = 2.5

SAMPLE_EGOS = 8192
SAMPLE_FANOUTS = (10, 5)
SAMPLE_SHARDS = 8
SERVE_QUERIES = 2048
SERVE_CORPUS = 20_000
SERVE_DIM = 64
INGEST_ROWS = 60_000
INGEST_TOUCHED = 3_000
ROUNDS = 3


def _usable_cpus() -> int:
    return len(os.sched_getaffinity(0))


def _bench_graph():
    """A relation-scale graph (hundreds of thousands of sampled edges)."""
    return generate_taobao_dataset(SyntheticTaobaoConfig(
        num_users=1200, num_queries=600, num_items=3000, num_categories=12,
        sessions_per_user=6.0, clicks_per_session=4, seed=42)).graph


def _time_sampling(engine, egos, batch_offset):
    start = time.perf_counter()
    for round_index in range(ROUNDS):
        batch = engine.sample_subgraph_batch(
            "user", egos, SAMPLE_FANOUTS, seed=7,
            batch_id=batch_offset + round_index)
    elapsed = time.perf_counter() - start
    return elapsed, batch


def _time_serving(engine, queries, k=10):
    start = time.perf_counter()
    for _ in range(ROUNDS):
        ids, scores = engine.search_batch(queries, k)
    elapsed = time.perf_counter() - start
    return elapsed, (ids, scores)


def _ingest_case(rng):
    degrees = rng.integers(10, 30, size=INGEST_ROWS)
    indptr = np.concatenate(([0], np.cumsum(degrees))).astype(np.int64)
    weights = rng.random(int(indptr[-1])) + 0.05
    base = BatchedAliasTable(indptr, weights)
    touched = np.sort(rng.choice(INGEST_ROWS, size=INGEST_TOUCHED,
                                 replace=False))
    bumped = weights.copy()
    flat = np.concatenate([np.arange(indptr[row], indptr[row + 1])
                           for row in touched])
    bumped[flat] += rng.random(flat.size)
    return base, indptr, bumped, touched


def _time_ingest(base, indptr, weights, touched, executor):
    start = time.perf_counter()
    for _ in range(ROUNDS):
        table = base.rebuilt(indptr, weights, touched, executor=executor)
    elapsed = time.perf_counter() - start
    return elapsed, table


def _assert_same_batch(a, b):
    assert len(a.layers) == len(b.layers)
    for la, lb in zip(a.layers, b.layers):
        np.testing.assert_array_equal(la.parents, lb.parents)
        np.testing.assert_array_equal(la.node_ids, lb.node_ids)
        np.testing.assert_array_equal(la.weights, lb.weights)


def _measure(worker_counts):
    """Measure all three paths at each worker count; returns result rows.

    The shard plan (``SAMPLE_SHARDS`` sampling shards, per-row ingest
    chunks) is identical for every configuration, so each row is the same
    work under a different schedule — and the bits are asserted equal.
    """
    cpus = _usable_cpus()
    graph = _bench_graph()
    egos = np.random.default_rng(1).integers(
        0, graph.num_nodes["user"], size=SAMPLE_EGOS)
    corpus_rng = np.random.default_rng(2)
    corpus = corpus_rng.standard_normal((SERVE_CORPUS, SERVE_DIM))
    queries = corpus_rng.standard_normal((SERVE_QUERIES, SERVE_DIM))
    index = IVFIndex(num_cells=64, nprobe=8, seed=0,
                     dtype=np.float32).build(corpus)
    base, indptr, bumped, touched = _ingest_case(np.random.default_rng(3))

    # One-time lazy costs (union adjacency + alias construction) are paid
    # before any clock starts, so neither backend's timing includes them.
    for node_type in graph.schema.node_types:
        graph.typed_adjacency(node_type).alias_sampler()

    rows = []
    for workers in worker_counts:
        serial = ParallelEngine(graph, num_workers=workers, backend="serial",
                                num_shards=SAMPLE_SHARDS)
        serial.attach_index(index)
        serial.sample_subgraph_batch("user", egos[:64], SAMPLE_FANOUTS,
                                     seed=0, batch_id=999)       # warm
        serial_sample_s, serial_batch = _time_sampling(serial, egos, 0)
        serial_serve_s, serial_hits = _time_serving(serial, queries)
        serial_ingest_s, serial_table = _time_ingest(
            base, indptr, bumped, touched, SerialExecutor(workers))

        with ParallelEngine(graph, num_workers=workers, backend="shared",
                            num_shards=SAMPLE_SHARDS) as shared:
            shared.attach_index(index)
            shared.sample_subgraph_batch("user", egos[:64], SAMPLE_FANOUTS,
                                         seed=0, batch_id=999)   # warm pool
            shared_sample_s, shared_batch = _time_sampling(shared, egos, 0)
            shared_serve_s, shared_hits = _time_serving(shared, queries)
            with WorkerPool(workers) as pool:
                pool.map("echo", [{}] * workers)         # spawn off the clock
                shared_ingest_s, shared_table = _time_ingest(
                    base, indptr, bumped, touched, pool)

        # The speedup may never buy drift: bit-identical to serial.
        _assert_same_batch(serial_batch, shared_batch)
        np.testing.assert_array_equal(serial_hits[0], shared_hits[0])
        np.testing.assert_array_equal(serial_hits[1], shared_hits[1])
        np.testing.assert_array_equal(serial_table._prob, shared_table._prob)
        np.testing.assert_array_equal(serial_table._alias,
                                      shared_table._alias)

        rows.append({
            "workers": workers,
            "cpus": cpus,
            "sampling_serial_egos_per_s": round(
                ROUNDS * SAMPLE_EGOS / serial_sample_s, 1),
            "sampling_shared_egos_per_s": round(
                ROUNDS * SAMPLE_EGOS / shared_sample_s, 1),
            "sampling_speedup": round(serial_sample_s / shared_sample_s, 2),
            "serving_serial_qps": round(
                ROUNDS * SERVE_QUERIES / serial_serve_s, 1),
            "serving_shared_qps": round(
                ROUNDS * SERVE_QUERIES / shared_serve_s, 1),
            "serving_speedup": round(serial_serve_s / shared_serve_s, 2),
            "ingest_serial_rebuilds_per_s": round(
                ROUNDS / serial_ingest_s, 2),
            "ingest_shared_rebuilds_per_s": round(
                ROUNDS / shared_ingest_s, 2),
            "ingest_speedup": round(serial_ingest_s / shared_ingest_s, 2),
        })
    return rows


def _assert_floors(row, floor, paths=("sampling", "serving")):
    """Pin the floor on every named path, or explain why it is skipped."""
    workers = row["workers"]
    if _usable_cpus() < workers:
        print(f"[skip] floor check at {workers} workers: only "
              f"{_usable_cpus()} usable core(s) on this machine "
              f"(a worker pool cannot outrun serial on cores it lacks)")
        return
    for path in paths:
        speedup = row[f"{path}_speedup"]
        assert speedup >= floor, (
            f"{path} speedup {speedup}x at {workers} workers fell below "
            f"the {floor}x floor")


def test_parallel_scaling_smoke(benchmark):
    """CI-safe slice: 2 workers must hold >= 1.5x (when 2 cores exist)."""
    rows = benchmark.pedantic(lambda: _measure([2]), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Parallel scaling smoke (2 workers)"))
    save_results([ExperimentResult(
        "parallel_scaling_smoke",
        "Parallel vs serial backend throughput at 2 workers", rows=rows,
        paper_reference={"claim": "shard-parallel execution scales the "
                                  "serving/sampling hot paths across cores"})],
        RESULTS_DIR)
    _assert_floors(rows[0], SMOKE_FLOOR_2_WORKERS)


def test_parallel_scaling_full(benchmark):
    """Full sweep: workers -> throughput, >= 2.5x at 4 workers floor."""
    rows = benchmark.pedantic(lambda: _measure([1, 2, 4]), rounds=1,
                              iterations=1)
    print()
    print(format_table(rows, title="Parallel scaling (1/2/4 workers)"))
    save_results([ExperimentResult(
        "parallel_scaling",
        "Workers -> throughput for sampling / serving / ingest "
        "(parallel shared-memory backend vs in-process serial backend)",
        rows=rows,
        paper_reference={"claim": "the paper's serving tier scales with "
                                  "machine count; this engine scales the "
                                  "reproduction with core count"})],
        RESULTS_DIR)
    for row in rows:
        if row["workers"] == 2:
            _assert_floors(row, SMOKE_FLOOR_2_WORKERS)
        if row["workers"] == 4:
            _assert_floors(row, FULL_FLOOR_4_WORKERS)
