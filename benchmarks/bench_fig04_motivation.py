"""Fig. 4 — motivating measurements of information overload.

(a) training cost (memory, iterations/s) vs number of sampled neighbors,
(b) similarity between successive queries of the same user,
(c) CDF of similarities between focal points and the user's local graph
    for a short vs a long history window.
"""

import numpy as np

from _common import RESULTS_DIR
from repro.baselines import GCNModel
from repro.distributed import GNNCostModel
from repro.experiments import (
    ExperimentResult,
    focal_local_similarity_cdf,
    format_table,
    save_results,
    successive_query_similarities,
)
from repro.experiments.motivation import fraction_below
from repro.training.dataloader import ImpressionDataLoader


def test_fig4a_training_cost_vs_fanout(benchmark, bench_taobao):
    """Memory grows and iteration speed drops as the fanout increases."""
    dataset, train, _ = bench_taobao

    def run():
        cost_model = GNNCostModel(hidden_dim=16)
        loader = ImpressionDataLoader(train[:64], batch_size=32)
        batch = next(iter(loader.epoch()))
        rows = []
        for fanout in (2, 4, 8, 12):
            model = GCNModel(dataset.graph, embedding_dim=16,
                             fanouts=(fanout, max(fanout // 2, 1)), seed=0)
            measured = cost_model.measure(model, batch)
            rows.append({
                "fanout": fanout,
                "measured_s_per_iter": round(measured.seconds, 4),
                "measured_iters_per_s": round(measured.iterations_per_second, 3),
                "modelled_memory_mb": round(measured.memory_bytes / 1e6, 3),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Fig. 4(a): training cost vs sampled neighbors"))
    # Shape check: more neighbors -> slower iterations, more memory.
    assert rows[-1]["measured_s_per_iter"] > rows[0]["measured_s_per_iter"]
    assert rows[-1]["modelled_memory_mb"] > rows[0]["modelled_memory_mb"]
    save_results([ExperimentResult(
        "fig4a", "Training cost vs sampled-neighbor count", rows=rows,
        paper_reference={"shape": "memory grows ~quadratically, iters/s drops"})],
        RESULTS_DIR)


def test_fig4b_query_drift(benchmark, bench_taobao):
    """Successive queries of the same user have low similarity (interest drift)."""
    dataset, _, _ = bench_taobao

    def run():
        return successive_query_similarities(dataset, max_users=10, seed=0)

    drift = benchmark.pedantic(run, rounds=1, iterations=1)
    values = np.array([s for sims in drift.values() for s in sims])
    rows = [{"user": user, "mean_similarity": round(float(np.mean(sims)), 3),
             "num_transitions": len(sims)} for user, sims in drift.items()]
    print()
    print(format_table(rows, title="Fig. 4(b): successive-query similarity"))
    print(f"overall mean similarity = {values.mean():.3f}")
    assert values.mean() < 0.8          # focal interests drift
    save_results([ExperimentResult(
        "fig4b", "Successive-query similarity per user", rows=rows,
        paper_reference={"claim": "successive queries have low similarity"})],
        RESULTS_DIR)


def test_fig4c_focal_local_similarity_cdf(benchmark, bench_taobao):
    """Most of a user's history has low similarity to the current focal."""
    dataset, _, _ = bench_taobao

    def run():
        short = focal_local_similarity_cdf(dataset, history_sessions=1,
                                           num_users=10, seed=0)
        long = focal_local_similarity_cdf(dataset, history_sessions=None,
                                          num_users=10, seed=0)
        return short, long

    short, long = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"window": "short (1 session ~ 1-hour)",
         "frac_below_0.0": round(fraction_below(short, 0.0), 3),
         "frac_below_0.5": round(fraction_below(short, 0.5), 3)},
        {"window": "long (full history ~ 1-day)",
         "frac_below_0.0": round(fraction_below(long, 0.0), 3),
         "frac_below_0.5": round(fraction_below(long, 0.5), 3)},
    ]
    print()
    print(format_table(rows, title="Fig. 4(c): focal vs local-graph similarity"))
    # Shape check: a large fraction of the history is weakly related to the
    # focal (the paper reports 40-80% below 0 depending on the window).
    assert rows[1]["frac_below_0.5"] > 0.2
    save_results([ExperimentResult(
        "fig4c", "Focal-vs-local-graph similarity CDF", rows=rows,
        paper_reference={"1-hour_below_0": 0.8, "1-day_below_0": 0.4})],
        RESULTS_DIR)
