"""Benchmark fixtures: shared datasets for the table/figure reproductions.

Every test collected from this directory is auto-marked ``bench`` (the marker
is registered in ``pytest.ini``), so the fast development loop can deselect
the benchmark-heavy reproductions with ``-m "not bench"``.
"""

from __future__ import annotations

import os

import pytest

from _common import BENCH_TEST_EXAMPLES, BENCH_TRAIN_EXAMPLES
from repro.data import (
    MovieLensConfig,
    SyntheticTaobaoConfig,
    generate_movielens_dataset,
    generate_taobao_dataset,
    train_test_split_examples,
)

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(config, items):
    """Mark every test under benchmarks/ as ``bench`` for easy deselection."""
    for item in items:
        if os.path.dirname(str(item.fspath)) == _BENCH_DIR:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def bench_taobao():
    """The main Taobao-like benchmark dataset (million-scale stand-in)."""
    dataset = generate_taobao_dataset(SyntheticTaobaoConfig(
        num_users=70, num_queries=55, num_items=160, num_categories=8,
        sessions_per_user=6.0, seed=100))
    train, test = train_test_split_examples(dataset.impressions, 0.9, seed=0)
    return dataset, train[:BENCH_TRAIN_EXAMPLES], test[:BENCH_TEST_EXAMPLES]


@pytest.fixture(scope="session")
def bench_movielens():
    """The MovieLens-like benchmark dataset (Table II stand-in)."""
    dataset = generate_movielens_dataset(MovieLensConfig(
        num_users=70, num_movies=130, num_tags=22, num_genres=6,
        ratings_per_user=9.0, seed=101))
    train, test = train_test_split_examples(dataset.examples, 0.8, seed=0)
    return dataset, train[:BENCH_TRAIN_EXAMPLES], test[:BENCH_TEST_EXAMPLES]


@pytest.fixture(scope="session")
def bench_scales():
    """Three graph scales standing in for million / hundred-million / billion."""
    scales = {}
    for name, config in (
            ("million-scale", SyntheticTaobaoConfig(
                num_users=40, num_queries=32, num_items=90, num_categories=6,
                sessions_per_user=5.0, seed=110)),
            ("hundred-million-scale", SyntheticTaobaoConfig(
                num_users=80, num_queries=60, num_items=180, num_categories=10,
                sessions_per_user=6.0, seed=111)),
            ("billion-scale", SyntheticTaobaoConfig(
                num_users=150, num_queries=110, num_items=340,
                num_categories=14, sessions_per_user=6.0, seed=112))):
        dataset = generate_taobao_dataset(config)
        train, test = train_test_split_examples(dataset.impressions, 0.9, seed=0)
        scales[name] = (dataset, train, test)
    return scales
