"""Fig. 12 — efficiency versus effectiveness of Zoomer and sampler baselines.

The paper fixes every method's sampling number to 30, then lets Zoomer's
focal-biased sampler reduce the processed graph a further 10x; it reports
relative training times (Zoomer 1.0x vs 5.8x-14.2x for the baselines) with
Zoomer still achieving the best AUC.  The reproduction uses a proportionally
smaller budget: baselines sample with a large fanout while Zoomer's ROI is
down-scaled, and both wall-clock and AUC are reported relative to Zoomer.
"""

from _common import RESULTS_DIR, quick_train
from repro.baselines import SAMPLER_BASELINES
from repro.core import ZoomerConfig, ZoomerModel
from repro.experiments import ExperimentResult, format_table, save_results

PAPER_RELATIVE_TIME = {"Zoomer": 1.0, "GraphSage": 5.8, "PinSage": 9.2,
                       "Pixie": 10.5, "PinnerSage": 14.2}
BASELINE_FANOUTS = (8, 4)
ZOOMER_DOWNSCALE = 0.25   # the paper reduces the ROI to one tenth


def test_fig12_efficiency_vs_effectiveness(benchmark, bench_taobao):
    dataset, train, test = bench_taobao

    def run():
        results = {}
        zoomer = ZoomerModel(dataset.graph, ZoomerConfig(
            embedding_dim=16, fanouts=BASELINE_FANOUTS,
            roi_downscale=ZOOMER_DOWNSCALE, seed=0))
        _, zoomer_result = quick_train(zoomer, train[:400], test[:200],
                                       max_batches=6)
        results["Zoomer"] = zoomer_result
        for name, cls in SAMPLER_BASELINES.items():
            model = cls(dataset.graph, embedding_dim=16,
                        fanouts=BASELINE_FANOUTS, seed=0)
            _, result = quick_train(model, train[:400], test[:200],
                                    max_batches=6)
            results[name] = result
        zoomer_time = max(results["Zoomer"].training_seconds, 1e-6)
        rows = []
        for name, result in results.items():
            rows.append({
                "model": name,
                "auc": round(result.final_metrics.auc, 4),
                "train_s": round(result.training_seconds, 2),
                "relative_time": round(result.training_seconds / zoomer_time, 2),
                "paper_relative_time": PAPER_RELATIVE_TIME.get(name),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Fig. 12: efficiency vs effectiveness "
                                   "(times relative to Zoomer)"))
    by_model = {row["model"]: row for row in rows}
    baseline_aucs = [row["auc"] for name, row in by_model.items()
                     if name != "Zoomer"]
    baseline_times = [row["relative_time"] for name, row in by_model.items()
                      if name != "Zoomer"]
    print(f"Zoomer AUC {by_model['Zoomer']['auc']:.3f} at 1.0x vs baselines "
          f"avg {sum(baseline_aucs)/len(baseline_aucs):.3f} at "
          f"{sum(baseline_times)/len(baseline_times):.1f}x time "
          f"(paper: ~10x average speedup, Zoomer best AUC)")
    # Shape checks: the down-scaled Zoomer trains no slower than the average
    # baseline, and remains competitive on AUC.
    assert by_model["Zoomer"]["relative_time"] <= \
        sum(baseline_times) / len(baseline_times) + 0.3
    assert by_model["Zoomer"]["auc"] >= min(baseline_aucs) - 0.05
    save_results([ExperimentResult(
        "fig12", "Efficiency vs effectiveness (relative training time, AUC)",
        rows=rows, paper_reference=PAPER_RELATIVE_TIME)], RESULTS_DIR)
