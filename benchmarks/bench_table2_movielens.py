"""Table II — comparison on the MovieLens-like dataset (AUC / MAE / RMSE).

Paper numbers (MovieLens 25M): Zoomer 93.79 AUC vs GCE-GNN 91.70, FGNN 90.72,
STAMP 88.07, MCCF 91.92, HAN 90.55.  The reproduction uses the synthetic
MovieLens-like dataset and checks the *shape*: Zoomer attains the best AUC of
the compared methods.
"""

from _common import RESULTS_DIR, quick_train
from repro.api import build_model
from repro.baselines import MOVIELENS_BASELINES
from repro.experiments import ExperimentResult, format_table, save_results

PAPER_TABLE2 = {
    "GCE-GNN": 91.70, "FGNN": 90.72, "STAMP": 88.07, "MCCF": 91.92,
    "HAN": 90.55, "Zoomer": 93.79,
}


def test_table2_movielens_comparison(benchmark, bench_movielens):
    dataset, train, test = bench_movielens

    def run():
        rows = []
        for name in ("Zoomer", *MOVIELENS_BASELINES):
            model = build_model(name, dataset.graph, embedding_dim=16,
                                fanouts=(5,), seed=0)
            # Same uniform budget as the Fig. 11 sweep (2 epochs, lr 0.05):
            # at 1 epoch / lr 0.03 every model sits in seed-noise near
            # AUC 0.5 and the comparison is meaningless (see fig11 notes).
            _, result = quick_train(model, train, test,
                                    epochs=2, learning_rate=0.05)
            report = result.final_metrics
            rows.append({
                "model": name,
                "auc_pct": round(report.auc * 100, 2),
                "mae": round(report.mae, 4),
                "rmse": round(report.rmse, 4),
                "paper_auc_pct": PAPER_TABLE2.get(name, float("nan")),
                "train_s": round(result.training_seconds, 1),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Table II: MovieLens-like comparison"))
    by_model = {row["model"]: row["auc_pct"] for row in rows}
    best_baseline = max(v for k, v in by_model.items() if k != "Zoomer")
    print(f"Zoomer AUC {by_model['Zoomer']:.2f} vs best baseline "
          f"{best_baseline:.2f} (paper: 93.79 vs 91.92)")
    # Shape check: Zoomer is at least competitive with the best baseline.
    assert by_model["Zoomer"] >= best_baseline - 2.0
    save_results([ExperimentResult(
        "table2", "MovieLens comparison (AUC/MAE/RMSE)", rows=rows,
        paper_reference=PAPER_TABLE2)], RESULTS_DIR)
