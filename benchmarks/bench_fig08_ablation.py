"""Fig. 8 — ablation of the multi-level attention across graph scales.

The paper disables one attention level at a time (GCN / Zoomer-FE /
Zoomer-FS / Zoomer-ES / Zoomer) and evaluates test AUC on the million-,
hundred-million- and billion-scale graphs.  Reported shape: every attention
level helps (full Zoomer best, plain GCN worst), removing the semantic level
hurts the most, and absolute AUC degrades on larger graphs under a fixed
training budget.
"""


from _common import RESULTS_DIR, quick_train
from repro.core import ZoomerConfig, build_ablation_variant
from repro.experiments import ExperimentResult, format_table, save_results

VARIANT_ORDER = ["GCN", "Zoomer-FE", "Zoomer-FS", "Zoomer-ES", "Zoomer"]


def test_fig8_ablation_across_scales(benchmark, bench_scales):
    def run():
        rows = []
        for scale_name, (dataset, train, test) in bench_scales.items():
            base = ZoomerConfig(embedding_dim=16, fanouts=(4, 2), seed=0)
            for variant in VARIANT_ORDER:
                model = build_ablation_variant(dataset.graph, variant, base)
                _, result = quick_train(model, train[:400], test[:200],
                                        max_batches=6)
                rows.append({
                    "graph_scale": scale_name,
                    "variant": variant,
                    "auc": round(result.final_metrics.auc, 4),
                    "train_s": round(result.training_seconds, 1),
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Fig. 8: ablation study across graph scales"))
    # Shape check on the smallest scale (the least noisy one at bench budget):
    # the full model should not lose to plain GCN by a large margin.
    million = {row["variant"]: row["auc"] for row in rows
               if row["graph_scale"] == "million-scale"}
    assert million["Zoomer"] >= million["GCN"] - 0.05
    save_results([ExperimentResult(
        "fig8", "Multi-level attention ablation across graph scales", rows=rows,
        paper_reference={"order": "Zoomer > Zoomer-ES ~ Zoomer-FS ~ Zoomer-FE > GCN",
                         "largest_drop": "removing semantic-level attention"})],
        RESULTS_DIR)
