"""Table IV — simulated production A/B test (CTR / PPC / RPM lift).

The paper replaces the PinSage retrieval channel with Zoomer on 4% of Taobao
search traffic and reports lifts of +0.295% CTR, +1.347% PPC and +0.646% RPM.
The reproduction trains both channel models on the same logs and runs the
behavioural A/B simulator on identical traffic; the shape check is that
Zoomer's CTR and RPM do not fall below the PinSage channel.
"""

from _common import RESULTS_DIR, quick_train
from repro.baselines import PinSageModel
from repro.core import ZoomerConfig, ZoomerModel
from repro.experiments import (
    ABTestConfig,
    ABTestSimulator,
    ExperimentResult,
    format_table,
    save_results,
)

PAPER_TABLE4 = {"CTR": 0.295, "PPC": 1.347, "RPM": 0.646}


def test_table4_ab_test(benchmark, bench_taobao):
    dataset, train, test = bench_taobao

    def run():
        zoomer = ZoomerModel(dataset.graph,
                             ZoomerConfig(embedding_dim=16, fanouts=(5, 3),
                                          seed=0))
        pinsage = PinSageModel(dataset.graph, embedding_dim=16, fanouts=(5, 3),
                               seed=0)
        quick_train(zoomer, train, test)
        quick_train(pinsage, train, test)
        simulator = ABTestSimulator(dataset, ABTestConfig(
            num_requests=120, top_k=10, seed=0))
        return simulator.run(pinsage, zoomer)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = result.as_rows()
    for row in rows:
        row["paper_lift_pct"] = PAPER_TABLE4[row["metric"]]
    print()
    print(format_table(rows, title="Table IV: simulated A/B test "
                                   "(PinSage channel vs Zoomer channel)"))
    save_results([ExperimentResult(
        "table4", "Production A/B test (CTR/PPC/RPM lift)", rows=rows,
        paper_reference=PAPER_TABLE4,
        notes="simulated traffic with a category-relevance click model")],
        RESULTS_DIR)
    lifts = {row["metric"]: row["lift_pct"] for row in rows}
    # Shape check: both channels served the same traffic and the Zoomer
    # channel's CTR does not collapse.  Revenue-based metrics (PPC / RPM) are
    # dominated by the heavy-tailed item prices at this traffic volume, so we
    # only require them to stay within a wide band around parity.
    assert result.base.impressions == result.treatment.impressions > 0
    assert lifts["CTR"] > -5.0
    assert -60.0 < lifts["RPM"] < 200.0
