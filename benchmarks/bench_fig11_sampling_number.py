"""Fig. 11 — effect of the sampling number K on AUC.

The paper sweeps the per-node sampling number K from 5 to 30 for Zoomer and
the sampler-equipped baselines (GraphSAGE, PinSage, PinnerSage, Pixie).
Reported shape: Zoomer dominates at every K, its advantage is largest at
small K (it finds a more informative sub-graph under a tight budget), and
more sampling is not always better (K=25 often beats K=30 — information
overload).  The bench sweeps a reduced K grid to stay laptop-fast.

An additional ablation (DESIGN.md §5) compares the paper's generalized-Jaccard
relevance score against the cosine alternative at the smallest K.
"""

import numpy as np

from _common import RESULTS_DIR, quick_train
from repro.api import build_model
from repro.baselines import SAMPLER_BASELINES
from repro.experiments import ExperimentResult, format_table, save_results

K_VALUES = (2, 5, 10)


def _zoomer(dataset, k, metric="generalized_jaccard"):
    return build_model("Zoomer", dataset.graph, embedding_dim=16,
                       fanouts=(k, max(k // 2, 1)), seed=0,
                       relevance_metric=metric)


def test_fig11_sampling_number_sweep(benchmark, bench_taobao):
    dataset, train, test = bench_taobao

    def run():
        rows = []
        for k in K_VALUES:
            for name in ("Zoomer", *SAMPLER_BASELINES):
                model = build_model(name, dataset.graph, embedding_dim=16,
                                    fanouts=(k, max(k // 2, 1)), seed=0)
                # Every model gets the same slightly-raised budget (2
                # epochs, lr 0.05): at the 1-epoch/lr-0.03 default,
                # Zoomer's deeper attention stack is undertrained and
                # seed-unstable (predictions stay near-constant, AUC ~0.5)
                # while the shallow baselines converge, which inverted the
                # paper's Fig. 11 shape.
                _, result = quick_train(model, train, test[:200],
                                        epochs=2, learning_rate=0.05)
                rows.append({
                    "K": k,
                    "model": name,
                    "auc": round(result.final_metrics.auc, 4),
                    "train_s": round(result.training_seconds, 1),
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Fig. 11: AUC vs sampling number K"))
    save_results([ExperimentResult(
        "fig11", "AUC vs sampling number K", rows=rows,
        paper_reference={"shape": "Zoomer dominates; margin largest at small K; "
                                  "K=25 often beats K=30"})], RESULTS_DIR)
    # Shape check: averaged over the whole K sweep, Zoomer is competitive with
    # the sampler baselines.  Per-K margins are too noisy at the 1-epoch bench
    # budget to assert the paper's exact per-point ordering.
    zoomer_mean = np.mean([row["auc"] for row in rows
                           if row["model"] == "Zoomer"])
    baseline_mean = np.mean([row["auc"] for row in rows
                             if row["model"] != "Zoomer"])
    print(f"sweep means: Zoomer {zoomer_mean:.3f} vs baselines "
          f"{baseline_mean:.3f} (paper: Zoomer dominates at every K)")
    assert zoomer_mean >= baseline_mean - 0.05


def test_fig11_relevance_metric_ablation(benchmark, bench_taobao):
    """DESIGN.md ablation: Eq. 5 generalized Jaccard vs cosine relevance."""
    dataset, train, test = bench_taobao

    def run():
        rows = []
        for metric in ("generalized_jaccard", "cosine"):
            model = _zoomer(dataset, K_VALUES[0], metric=metric)
            _, result = quick_train(model, train[:400], test[:200],
                                    max_batches=6)
            rows.append({"relevance_metric": metric,
                         "auc": round(result.final_metrics.auc, 4)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: ROI relevance score "
                                   "(Eq. 5 vs cosine)"))
    aucs = [row["auc"] for row in rows]
    # The paper states either score works; they should be in the same range.
    assert abs(aucs[0] - aucs[1]) < 0.15
    save_results([ExperimentResult(
        "fig11_metric_ablation", "ROI relevance metric ablation", rows=rows,
        paper_reference={"claim": "Eq. 5 can be replaced by cosine distance"})],
        RESULTS_DIR)
