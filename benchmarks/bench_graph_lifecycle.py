"""Graph-lifecycle benchmark: bounded memory and stable recall under drift.

The lifecycle subsystem's claim is the inverse of the streaming-ingest one:
absorbing a drifting stream *forever* must not cost memory proportional to
the stream.  Replaying the ``temporal-logs`` dataset (timestamped sessions
whose active user/item cohort slides over time) against a live pipeline, this
benchmark pins:

* **bounded memory** (the ``smoke`` test, run in CI): with
  :class:`~repro.api.spec.LifecycleSpec` enabled, the graph's total bytes
  (CSR + features + alias tables) stay flat within
  :data:`MAX_STEADY_STATE_DEVIATION` of their post-warmup mean, while the
  append-only baseline keeps growing by at least
  :data:`MIN_BASELINE_GROWTH` over the same window;
* **stable recall under drift**: with decay + TTL eviction on, serving
  recall on the stream's recent sessions must stay within
  :data:`RECALL_TOLERANCE` of the append-only baseline.  (In practice it is
  far *better* — stale edges distort alias sampling and postings toward
  dead cohorts, which is the defect the lifecycle fixes.)

Everything is seeded; both tests are deterministic across runs.
"""

import numpy as np

from _common import RESULTS_DIR
from repro.api import ExperimentSpec, Pipeline
from repro.api.registry import load_dataset
from repro.experiments import ExperimentResult, format_table, save_results
from repro.streaming import ReplayDriver

#: Post-warmup samples must stay within this fraction of their mean.
MAX_STEADY_STATE_DEVIATION = 0.10
#: The append-only baseline must grow at least this factor over the same
#: post-warmup window (i.e. the workload genuinely pressures memory).
MIN_BASELINE_GROWTH = 1.30
#: Lifecycle recall may trail the append-only baseline by at most this much.
RECALL_TOLERANCE = 0.02

#: Drifting-stream shape shared by both tests (fixed seed: deterministic).
STREAM_PARAMS = {"num_users": 80, "num_items": 160, "num_queries": 32,
                 "horizon": 1000.0, "cohort_fraction": 0.25}

#: Lifecycle knobs (timestamp units match the stream horizon).
LIFECYCLE = {"enabled": True, "half_life": 80.0, "edge_ttl": 240.0,
             "node_ttl": 200.0, "compact_every": 2}

#: Memory samples taken over the replay; the first half is warmup.
MEMORY_SLICES = 12


def _ingest_spec(lifecycle_on: bool, params: dict) -> ExperimentSpec:
    """Ingest-only spec over a temporal-logs stream (no server deployed)."""
    return ExperimentSpec.from_dict({
        "dataset": {"name": "temporal-logs", "params": params},
        "streaming": {"micro_batch_size": 16, "refresh_every": 1},
        "lifecycle": dict(LIFECYCLE, enabled=lifecycle_on),
    })


def _memory_series(lifecycle_on: bool, params: dict) -> list:
    """Graph bytes (CSR + features + alias) sampled across one replay."""
    dataset = load_dataset("temporal-logs", **params)
    pipeline = Pipeline(_ingest_spec(lifecycle_on, params))
    pipeline.build_graph()
    tail = dataset.replay_sessions
    series = []
    for chunk in np.array_split(np.arange(len(tail)), MEMORY_SLICES):
        pipeline.ingest([tail[i] for i in chunk], refresh=False)
        series.append(pipeline.graph.memory_bytes(include_alias=True))
    return series


def test_graph_lifecycle_steady_state_memory_smoke(benchmark):
    """Steady-state replay smoke: memory flat within ±10% after warmup.

    The CI perf-regression gate (``-k smoke``): a short drifting replay
    where the lifecycle-enabled graph must plateau while the append-only
    baseline demonstrably keeps growing.
    """
    params = dict(STREAM_PARAMS, num_sessions=1200, warm_fraction=0.25,
                  seed=3)

    def run():
        bounded = _memory_series(True, params)
        unbounded = _memory_series(False, params)
        warmup = MEMORY_SLICES // 2
        steady = bounded[warmup:]
        mean = float(np.mean(steady))
        deviation = max(abs(sample - mean) / mean for sample in steady)
        growth = unbounded[-1] / unbounded[warmup - 1]
        return {
            "replayed_events": int(params["num_sessions"]
                                   * (1 - params["warm_fraction"])),
            "final_kb_lifecycle": round(bounded[-1] / 1024, 1),
            "final_kb_append_only": round(unbounded[-1] / 1024, 1),
            "steady_state_deviation": round(deviation, 3),
            "append_only_growth": round(float(growth), 2),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table([row], title="Graph lifecycle: steady-state memory "
                                    "under a drifting replay"))
    save_results([ExperimentResult(
        "graph_lifecycle_steady_state_memory",
        "Graph bytes under sustained replay: lifecycle vs append-only",
        rows=[row],
        paper_reference={"shape": "a continuously fed behavior graph must "
                                  "hold steady-state memory, not grow with "
                                  "the stream"})], RESULTS_DIR)
    assert row["steady_state_deviation"] <= MAX_STEADY_STATE_DEVIATION, \
        f"lifecycle memory drifted {row['steady_state_deviation']:.1%} from " \
        f"its post-warmup mean (allowed {MAX_STEADY_STATE_DEVIATION:.0%})"
    assert row["append_only_growth"] >= MIN_BASELINE_GROWTH, \
        f"append-only baseline grew only {row['append_only_growth']}x; the " \
        f"workload no longer pressures memory, so the smoke proves nothing"


def _deployed_recall(lifecycle_on: bool, params: dict) -> dict:
    """Train + deploy + replay one pipeline; recall@20 on recent sessions."""
    dataset = load_dataset("temporal-logs", **params)
    spec = ExperimentSpec.from_dict({
        "dataset": {"name": "temporal-logs", "params": params},
        "model": {"embedding_dim": 16, "fanouts": [5, 2]},
        "training": {"epochs": 1, "max_batches_per_epoch": 8},
        "serving": {"ann_cells": 8, "ann_nprobe": 3, "warm_users": 20,
                    "warm_queries": 20},
        "streaming": {"micro_batch_size": 16, "refresh_every": 4},
        "lifecycle": dict(LIFECYCLE, enabled=lifecycle_on,
                          compact_every=4),
        "seed": 0,
    })
    pipeline = Pipeline(spec)
    server = pipeline.deploy()
    report = ReplayDriver(pipeline).replay(dataset.replay_sessions)
    recent = dataset.replay_sessions[-40:]
    hits = total = 0
    for session in recent:
        result = server.serve(session.user_id, session.query_id, k=20)
        top = set(int(item) for item in result.item_ids)
        hits += len(top & set(session.clicked_items))
        total += len(session.clicked_items)
    return {"recall": hits / total if total else 0.0,
            "compactions": report.ingest.compactions,
            "evicted_nodes": report.ingest.evicted_nodes,
            "removed_edges": report.ingest.removed_edges}


def test_graph_lifecycle_recall_under_drift(benchmark):
    """Recall on the live cohort: lifecycle within 2% of append-only.

    Replays a drifting stream through two identically trained pipelines
    (lifecycle on / off) and scores serving recall@20 against the clicked
    items of the stream's most recent sessions.  Decay + eviction must not
    cost recall on live traffic — empirically it *gains*, because stale
    cohorts stop distorting alias sampling and posting lists.
    """
    params = dict(STREAM_PARAMS, num_sessions=900, warm_fraction=0.3, seed=5)

    def run():
        baseline = _deployed_recall(False, params)
        lifecycle = _deployed_recall(True, params)
        return {
            "recall_append_only": round(baseline["recall"], 4),
            "recall_lifecycle": round(lifecycle["recall"], 4),
            "compactions": lifecycle["compactions"],
            "evicted_nodes": lifecycle["evicted_nodes"],
            "removed_edges": lifecycle["removed_edges"],
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table([row], title="Graph lifecycle: serving recall under "
                                    "interest drift"))
    save_results([ExperimentResult(
        "graph_lifecycle_recall_under_drift",
        "Recall@20 on recent sessions: lifecycle vs append-only replay",
        rows=[row],
        paper_reference={"shape": "pruning stale graph state must not "
                                  "degrade recall on live traffic"})],
        RESULTS_DIR)
    assert row["compactions"] > 0 and row["evicted_nodes"] > 0, \
        "lifecycle pass never fired; the comparison is vacuous"
    assert row["recall_lifecycle"] >= \
        row["recall_append_only"] - RECALL_TOLERANCE, \
        f"lifecycle recall {row['recall_lifecycle']} fell more than " \
        f"{RECALL_TOLERANCE} below append-only {row['recall_append_only']}"
