"""Table III — AUC and HitRate@K on the Taobao-like industry graph.

Paper numbers (million-scale Taobao graph): Zoomer leads with AUC 72.4 and
HitRate@100/200/300 of 0.35/0.48/0.58; the best baseline (HAN) reaches AUC
70.3.  The reproduction trains the full model zoo on the synthetic graph and
checks that Zoomer attains the best (or tied-best) AUC, and that its hit rates
are at least as good as the baseline average.
"""

import numpy as np

from _common import RESULTS_DIR, quick_train
from repro.api import build_model
from repro.baselines import ALL_BASELINES
from repro.experiments import ExperimentResult, format_table, save_results

PAPER_TABLE3_AUC = {
    "GCE-GNN": 68.3, "FGNN": 64.2, "STAMP": 69.6, "MCCF": 64.6, "HAN": 70.3,
    "PinSage": 68.0, "GraphSage": 68.2, "PinnerSage": 69.1, "Pixie": 69.5,
    "Zoomer": 72.4,
}

#: HitRate@K values are scaled to the small candidate pool of the synthetic
#: graph; the paper uses K in {100, 200, 300} over a much larger pool.
HIT_KS = (10, 30, 50)


def test_table3_taobao_comparison(benchmark, bench_taobao):
    dataset, train, test = bench_taobao

    def run():
        rows = []
        for name in ("Zoomer", *ALL_BASELINES):
            model = build_model(name, dataset.graph, embedding_dim=16,
                                fanouts=(5, 3), seed=0)
            trainer, result = quick_train(model, train, test)
            hit_rates = trainer.evaluate_hit_rate(
                test, ks=HIT_KS, candidate_pool=dataset.config.num_items,
                max_requests=25)
            row = {
                "model": name,
                "auc_pct": round(result.final_metrics.auc * 100, 2),
                "paper_auc_pct": PAPER_TABLE3_AUC.get(name, float("nan")),
                "train_s": round(result.training_seconds, 1),
            }
            for k in HIT_KS:
                row[f"hitrate@{k}"] = round(hit_rates[k], 3)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Table III: Taobao-like industry graph"))
    by_model = {row["model"]: row for row in rows}
    zoomer_auc = by_model["Zoomer"]["auc_pct"]
    baseline_aucs = [row["auc_pct"] for name, row in by_model.items()
                     if name != "Zoomer"]
    print(f"Zoomer AUC {zoomer_auc:.2f} vs best baseline {max(baseline_aucs):.2f} "
          f"(paper: 72.4 vs 70.3)")
    # Shape checks: Zoomer is at or near the top on AUC, and its hit rate is
    # not worse than the baseline average.
    assert zoomer_auc >= max(baseline_aucs) - 2.0
    zoomer_hit = by_model["Zoomer"][f"hitrate@{HIT_KS[-1]}"]
    mean_baseline_hit = float(np.mean([row[f"hitrate@{HIT_KS[-1]}"]
                                       for name, row in by_model.items()
                                       if name != "Zoomer"]))
    assert zoomer_hit >= mean_baseline_hit - 0.1
    save_results([ExperimentResult(
        "table3", "Taobao industry-graph comparison (AUC, HitRate@K)",
        rows=rows, paper_reference=PAPER_TABLE3_AUC,
        notes=f"HitRate measured at K={HIT_KS} over the synthetic item pool")],
        RESULTS_DIR)
