"""Fig. 10 — training time to a target AUC versus graph scale.

The paper fixes a quality target (AUC = 0.6), fanout 5 and a 2-layer model,
and measures wall-clock training time on the million / hundred-million /
billion-scale graphs for Zoomer and GCE-GNN.  Reported shape: training cost
grows steeply with graph scale, and Zoomer reaches the target faster than
GCE-GNN at every scale (especially the largest).

This module also benchmarks the training-side sampling engine itself:
``test_fig10_sampling_throughput_looped_vs_batched`` compares the historical
per-node Python sampling loop against the vectorized batch path at equal
outputs and pins a minimum speedup, so a regression on the training hot
path fails the benchmark suite (and the CI smoke job).
"""

import time

import numpy as np

from _common import RESULTS_DIR, quick_train
from repro.baselines import GCEGNNModel
from repro.core import ZoomerConfig, ZoomerModel
from repro.experiments import ExperimentResult, format_table, save_results
from repro.graph import HeteroGraph
from repro.graph.schema import EdgeType, NodeType, RelationSpec, taobao_schema

TARGET_AUC = 0.6
MAX_EPOCHS = 3

#: Pinned floor for the batched sampling engine over the per-node loop.
MIN_SAMPLING_SPEEDUP = 5.0


def test_fig10_training_time_vs_scale(benchmark, bench_scales):
    def run():
        rows = []
        for scale_name, (dataset, train, test) in bench_scales.items():
            train_slice = train[:500]
            test_slice = test[:200]
            for name, factory in (
                    ("Zoomer", lambda d=dataset: ZoomerModel(
                        d.graph, ZoomerConfig(embedding_dim=16, fanouts=(5, 3),
                                              seed=0))),
                    ("GCE-GNN", lambda d=dataset: GCEGNNModel(
                        d.graph, embedding_dim=16, fanouts=(5, 3), seed=0))):
                model = factory()
                _, result = quick_train(model, train_slice, test_slice,
                                        epochs=MAX_EPOCHS, max_batches=6,
                                        target_auc=TARGET_AUC)
                time_to_target = result.time_to_target \
                    if result.reached_target_auc else result.training_seconds
                rows.append({
                    "graph_scale": scale_name,
                    "model": name,
                    "reached_target": bool(result.reached_target_auc),
                    "time_s": round(time_to_target, 2),
                    "final_auc": round((result.epoch_aucs or [0.0])[-1], 3),
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title=f"Fig. 10: training time to AUC={TARGET_AUC} "
                                   "vs graph scale"))
    # Shape check: cost grows with graph scale for Zoomer.
    zoomer_times = [row["time_s"] for row in rows if row["model"] == "Zoomer"]
    assert zoomer_times[0] <= zoomer_times[-1] * 3.0
    save_results([ExperimentResult(
        "fig10", "Training time to target AUC vs graph scale", rows=rows,
        paper_reference={"shape": "cost grows with scale; Zoomer faster than "
                                  "GCE-GNN at every scale"})], RESULTS_DIR)


def _sampling_bench_graph(num_users=2000, num_items=5000, num_edges=60_000,
                          seed=0):
    """A training-scale graph for the sampling throughput comparison."""
    rng = np.random.default_rng(seed)
    graph = HeteroGraph(taobao_schema(feature_dim=8))
    graph.add_nodes(NodeType.USER, rng.normal(size=(num_users, 8)))
    graph.add_nodes(NodeType.QUERY, rng.normal(size=(200, 8)))
    graph.add_nodes(NodeType.ITEM, rng.normal(size=(num_items, 8)))
    spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
    graph.add_edges(spec,
                    rng.integers(0, num_users, size=num_edges),
                    rng.integers(0, num_items, size=num_edges),
                    rng.random(num_edges) + 0.1)
    return graph.finalize(), spec


def test_fig10_sampling_throughput_looped_vs_batched(benchmark):
    """Batched frontier sampling must beat the per-node loop at equal outputs.

    Both paths draw from the same seeded generator and return bit-identical
    samples (the engine's batch-of-one stream contract), so this measures
    pure dispatch overhead removed by vectorization — the training-side twin
    of the Fig. 9 serving batching win.
    """
    graph, spec = _sampling_bench_graph()
    relation = graph.relation(spec)
    relation.alias_sampler()          # amortized one-time build, off the clock
    nodes = np.arange(graph.num_nodes[NodeType.USER])
    k = 10
    repeats = 3

    def run():
        loop_seconds = 0.0
        batch_seconds = 0.0
        for repeat in range(repeats):
            rng = np.random.default_rng(repeat)
            start = time.perf_counter()
            looped = [relation.sample_neighbors(int(node), k, rng=rng)
                      for node in nodes]
            loop_seconds += time.perf_counter() - start

            rng = np.random.default_rng(repeat)
            start = time.perf_counter()
            batched = relation.sample_neighbors_batch(nodes, k, rng=rng)
            batch_seconds += time.perf_counter() - start

            # Equal outputs: identical samples under the same seed.
            for row in range(0, nodes.size, 97):
                ids, weights = looped[row]
                batch_ids, batch_weights = batched.row(row)
                np.testing.assert_array_equal(ids, batch_ids)
                np.testing.assert_allclose(weights, batch_weights)
        total = nodes.size * repeats
        return {
            "looped_nodes_per_s": round(total / loop_seconds),
            "batched_nodes_per_s": round(total / batch_seconds),
            "speedup": round(loop_seconds / batch_seconds, 1),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table([row], title="Fig. 10 companion: sampling throughput, "
                                    "per-node loop vs batched engine"))
    save_results([ExperimentResult(
        "fig10_sampling_throughput",
        "Looped vs batched neighbor sampling throughput", rows=[row],
        paper_reference={"shape": "batched engine removes the per-node "
                                  "Python dispatch bottleneck"})], RESULTS_DIR)
    assert row["speedup"] >= MIN_SAMPLING_SPEEDUP, \
        f"batched sampling speedup {row['speedup']}x fell below the " \
        f"{MIN_SAMPLING_SPEEDUP}x floor"
