"""Fig. 10 — training time to a target AUC versus graph scale.

The paper fixes a quality target (AUC = 0.6), fanout 5 and a 2-layer model,
and measures wall-clock training time on the million / hundred-million /
billion-scale graphs for Zoomer and GCE-GNN.  Reported shape: training cost
grows steeply with graph scale, and Zoomer reaches the target faster than
GCE-GNN at every scale (especially the largest).
"""

from _common import RESULTS_DIR, quick_train
from repro.baselines import GCEGNNModel
from repro.core import ZoomerConfig, ZoomerModel
from repro.experiments import ExperimentResult, format_table, save_results

TARGET_AUC = 0.6
MAX_EPOCHS = 3


def test_fig10_training_time_vs_scale(benchmark, bench_scales):
    def run():
        rows = []
        for scale_name, (dataset, train, test) in bench_scales.items():
            train_slice = train[:500]
            test_slice = test[:200]
            for name, factory in (
                    ("Zoomer", lambda d=dataset: ZoomerModel(
                        d.graph, ZoomerConfig(embedding_dim=16, fanouts=(5, 3),
                                              seed=0))),
                    ("GCE-GNN", lambda d=dataset: GCEGNNModel(
                        d.graph, embedding_dim=16, fanouts=(5, 3), seed=0))):
                model = factory()
                _, result = quick_train(model, train_slice, test_slice,
                                        epochs=MAX_EPOCHS, max_batches=6,
                                        target_auc=TARGET_AUC)
                time_to_target = result.time_to_target \
                    if result.reached_target_auc else result.training_seconds
                rows.append({
                    "graph_scale": scale_name,
                    "model": name,
                    "reached_target": bool(result.reached_target_auc),
                    "time_s": round(time_to_target, 2),
                    "final_auc": round((result.epoch_aucs or [0.0])[-1], 3),
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title=f"Fig. 10: training time to AUC={TARGET_AUC} "
                                   "vs graph scale"))
    # Shape check: cost grows with graph scale for Zoomer.
    zoomer_times = [row["time_s"] for row in rows if row["model"] == "Zoomer"]
    assert zoomer_times[0] <= zoomer_times[-1] * 3.0
    save_results([ExperimentResult(
        "fig10", "Training time to target AUC vs graph scale", rows=rows,
        paper_reference={"shape": "cost grows with scale; Zoomer faster than "
                                  "GCE-GNN at every scale"})], RESULTS_DIR)
