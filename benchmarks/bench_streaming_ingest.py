"""Streaming-ingest companion benchmark: scoped vs full alias rebuilds.

The streaming subsystem's core claim is that absorbing a micro-batch of new
edges costs time proportional to the *update*, not the graph: when edges
land on 1% of a relation's rows, only those rows' alias tables are rebuilt
(:meth:`repro.graph.alias.BatchedAliasTable.rebuilt`) while the other 99%
have their finished slices copied over in one vectorized pass.  This
benchmark pins that claim two ways:

* the scoped rebuild must beat a from-scratch ``BatchedAliasTable`` build by
  at least :data:`MIN_SCOPED_SPEEDUP` on a 1%-touched update, and
* the scoped result must be **bit-identical** to the full rebuild (prob and
  alias arrays compared exactly), so the speed never buys drift.

It also reports the end-to-end relation path (``Relation.apply_updates``
versus rebuilding the relation from the full edge list) for the same update.
"""

import time

import numpy as np

from _common import RESULTS_DIR
from repro.experiments import ExperimentResult, format_table, save_results
from repro.graph.alias import BatchedAliasTable
from repro.graph.hetero_graph import Relation
from repro.graph.schema import EdgeType, NodeType, RelationSpec

#: Pinned floor: scoped rebuild vs full rebuild on a 1%-touched-rows update.
MIN_SCOPED_SPEEDUP = 5.0

NUM_ROWS = 20_000
AVG_DEGREE = 20
TOUCHED_FRACTION = 0.01
REPEATS = 3


def _weighted_csr(rng, num_rows=NUM_ROWS, avg_degree=AVG_DEGREE):
    """A relation-scale CSR with genuinely non-uniform weights everywhere."""
    degrees = rng.integers(max(avg_degree // 2, 1), avg_degree * 2,
                           size=num_rows)
    indptr = np.concatenate(([0], np.cumsum(degrees))).astype(np.int64)
    num_edges = int(indptr[-1])
    indices = rng.integers(0, num_rows, size=num_edges)
    weights = rng.random(num_edges) + 0.05
    return indptr, indices, weights


def _one_percent_update(rng, indptr, weights):
    """Append 1-3 edges to 1% of the rows; returns the updated CSR + rows."""
    num_rows = indptr.size - 1
    touched = np.sort(rng.choice(num_rows,
                                 size=max(1, int(num_rows * TOUCHED_FRACTION)),
                                 replace=False))
    added = np.zeros(num_rows, dtype=np.int64)
    added[touched] = rng.integers(1, 4, size=touched.size)
    old_degrees = np.diff(indptr)
    new_indptr = np.concatenate(
        ([0], np.cumsum(old_degrees + added))).astype(np.int64)
    new_weights = np.empty(int(new_indptr[-1]))
    for row in range(num_rows):          # setup cost, off the clock
        lo, hi = indptr[row], indptr[row + 1]
        segment = np.concatenate(
            [weights[lo:hi], rng.random(added[row]) + 0.05])
        new_weights[new_indptr[row]:new_indptr[row + 1]] = segment
    return new_indptr, new_weights, touched


def test_streaming_scoped_alias_rebuild_speedup(benchmark):
    """Scoped alias rebuilds must beat full rebuilds >=5x at 1% touched rows."""

    def run():
        full_seconds = 0.0
        scoped_seconds = 0.0
        for repeat in range(REPEATS):
            rng = np.random.default_rng(repeat)
            indptr, _, weights = _weighted_csr(rng)
            base = BatchedAliasTable(indptr, weights)
            new_indptr, new_weights, touched = _one_percent_update(
                rng, indptr, weights)

            start = time.perf_counter()
            full = BatchedAliasTable(new_indptr, new_weights)
            full_seconds += time.perf_counter() - start

            start = time.perf_counter()
            scoped = base.rebuilt(new_indptr, new_weights, touched)
            scoped_seconds += time.perf_counter() - start

            # Scoped must be bit-identical to the from-scratch build.
            np.testing.assert_array_equal(scoped._prob, full._prob)
            np.testing.assert_array_equal(scoped._alias, full._alias)
            np.testing.assert_array_equal(scoped.indptr, full.indptr)
        return {
            "rows": NUM_ROWS,
            "touched_rows": int(NUM_ROWS * TOUCHED_FRACTION),
            "full_rebuild_ms": round(1000 * full_seconds / REPEATS, 2),
            "scoped_rebuild_ms": round(1000 * scoped_seconds / REPEATS, 2),
            "speedup": round(full_seconds / scoped_seconds, 1),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table([row], title="Streaming ingest: scoped vs full alias "
                                    "rebuild (1% touched rows)"))
    save_results([ExperimentResult(
        "streaming_scoped_alias_rebuild",
        "Scoped vs full BatchedAliasTable rebuild on a 1%-touched update",
        rows=[row],
        paper_reference={"shape": "incremental ingest cost tracks the "
                                  "update size, not the graph size"})],
        RESULTS_DIR)
    assert row["speedup"] >= MIN_SCOPED_SPEEDUP, \
        f"scoped alias rebuild speedup {row['speedup']}x fell below the " \
        f"{MIN_SCOPED_SPEEDUP}x floor"


def test_streaming_relation_append_end_to_end(benchmark):
    """``Relation.apply_updates`` must track the update, not the relation.

    End-to-end twin of the alias pin: appending a 1%-rows edge batch
    through the streaming path is compared against rebuilding the relation
    (CSR re-sort + full alias construction) from the concatenated edge
    list, at bit-identical sampling state.
    """
    spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)

    def run():
        incremental_seconds = 0.0
        rebuild_seconds = 0.0
        for repeat in range(REPEATS):
            rng = np.random.default_rng(100 + repeat)
            num_edges = NUM_ROWS * AVG_DEGREE
            src = rng.integers(0, NUM_ROWS, size=num_edges)
            dst = rng.integers(0, NUM_ROWS, size=num_edges)
            weights = rng.random(num_edges) + 0.05
            touched = rng.choice(NUM_ROWS,
                                 size=int(NUM_ROWS * TOUCHED_FRACTION),
                                 replace=False)
            new_src = np.repeat(touched, 2)
            # Distinct dst ids beyond the existing range: guaranteed-new
            # pairs, so the streamed CSR equals the plain concatenation
            # (repeated pairs would instead accumulate weight).
            new_dst = NUM_ROWS + np.arange(new_src.size)
            new_weights = rng.random(new_src.size) + 0.05

            streamed = Relation(spec, NUM_ROWS, src, dst, weights)
            streamed.alias_sampler()           # built once, before the stream
            start = time.perf_counter()
            streamed.apply_updates(new_src, new_dst, new_weights)
            incremental_seconds += time.perf_counter() - start

            start = time.perf_counter()
            rebuilt = Relation(spec, NUM_ROWS,
                               np.concatenate([src, new_src]),
                               np.concatenate([dst, new_dst]),
                               np.concatenate([weights, new_weights]))
            rebuilt.alias_sampler()
            rebuild_seconds += time.perf_counter() - start

            np.testing.assert_array_equal(streamed.indptr, rebuilt.indptr)
            np.testing.assert_array_equal(streamed.indices, rebuilt.indices)
            np.testing.assert_array_equal(streamed.weights, rebuilt.weights)
        return {
            "edges": NUM_ROWS * AVG_DEGREE,
            "appended_edges": int(NUM_ROWS * TOUCHED_FRACTION) * 2,
            "full_rebuild_ms": round(1000 * rebuild_seconds / REPEATS, 2),
            "streamed_ms": round(1000 * incremental_seconds / REPEATS, 2),
            "speedup": round(rebuild_seconds / incremental_seconds, 1),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table([row], title="Streaming ingest: apply_updates vs "
                                    "from-scratch relation rebuild"))
    save_results([ExperimentResult(
        "streaming_relation_append",
        "Incremental relation append vs full rebuild (1% touched rows)",
        rows=[row],
        paper_reference={"shape": "streaming appends avoid the full "
                                  "re-sort + alias build"})], RESULTS_DIR)
    assert row["speedup"] >= MIN_SCOPED_SPEEDUP
