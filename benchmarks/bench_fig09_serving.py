"""Fig. 9 — online response time versus queries per second.

The paper serves 1K-50K QPS with average response times of ~2.6-3.6 ms; when
QPS grows 10x the response time grows less than 2x, thanks to the neighbor
caches, the decoupled asynchronous aggregation and the inverted index.  The
reproduction measures the per-request service time of the serving stack and
sweeps QPS through the M/M/c queueing model; the shape check is the
sub-linear growth.

Two extensions cover the batched engine:

* a batch-size-versus-latency sweep, calibrated from real ``serve_batch``
  measurements through the affine batch-service profile, and
* a batched-versus-sequential throughput comparison that asserts the
  vectorized path is at least 5x faster than the one-request-at-a-time loop
  while returning identical results.
"""

import time

import numpy as np

from _common import RESULTS_DIR, quick_train
from repro.core import ZoomerConfig, ZoomerModel
from repro.experiments import ExperimentResult, format_table, save_results
from repro.serving import OnlineServer

QPS_SWEEP = [1000, 2000, 3000, 4000, 5000, 10000, 20000, 30000, 40000, 50000]
BATCH_SIZES = [1, 8, 32, 128]


def test_fig9_response_time_vs_qps(benchmark, bench_taobao):
    dataset, train, _ = bench_taobao

    def run():
        model = ZoomerModel(dataset.graph,
                            ZoomerConfig(embedding_dim=16, fanouts=(5, 3),
                                         seed=0))
        quick_train(model, train[:300], max_batches=4)
        server = OnlineServer(model, cache_capacity=30, ann_cells=8,
                              ann_nprobe=3, num_servers=4096)
        active_users = list(range(min(20, dataset.config.num_users)))
        active_queries = list(range(min(20, dataset.config.num_queries)))
        server.warm_caches(active_users, active_queries)
        server.build_inverted_index(active_queries)
        calibration = [(s.user_id, s.query_id) for s in dataset.sessions[:20]]
        rows = server.qps_sweep(QPS_SWEEP, calibration)
        batch_rows = server.batch_size_sweep(10_000, calibration, BATCH_SIZES)
        hit_rate = server.cache.hit_rate()
        return rows, batch_rows, hit_rate

    rows, batch_rows, hit_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Fig. 9: online response time vs QPS"))
    print(format_table(batch_rows,
                       title="Fig. 9 extension: batch size vs latency at 10K QPS"))
    print(f"neighbor-cache hit rate during calibration: {hit_rate:.2f}")
    low = next(r["response_ms"] for r in rows if r["qps"] == 1000)
    high = next(r["response_ms"] for r in rows if r["qps"] == 10000)
    print(f"response time at 1K QPS: {low:.3f} ms, at 10K QPS: {high:.3f} ms "
          f"(paper: 10x QPS -> <2x response time)")
    # Shape checks: monotone growth, and 10x QPS costs less than 2x latency.
    times = [r["response_ms"] for r in rows]
    assert times == sorted(times)
    assert high / low < 2.0
    assert [r["batch_size"] for r in batch_rows] == BATCH_SIZES
    assert all(r["response_ms"] > 0 for r in batch_rows)
    save_results([
        ExperimentResult(
            "fig9", "Online response time vs QPS", rows=rows,
            paper_reference={"rt_range_ms": "2.6-3.6",
                             "claim": "10x QPS -> <2x response time"}),
        ExperimentResult(
            "fig9_batch_sweep", "Batch size vs latency at 10K QPS",
            rows=batch_rows,
            paper_reference={"claim": "micro-batching trades assembly wait "
                                      "for amortised service time"}),
    ], RESULTS_DIR)


def test_fig9_batched_throughput_vs_sequential(bench_taobao):
    """The vectorized batched path must beat the sequential loop >= 5x."""
    dataset, train, _ = bench_taobao
    model = ZoomerModel(dataset.graph,
                        ZoomerConfig(embedding_dim=16, fanouts=(5, 3), seed=0))
    quick_train(model, train[:300], max_batches=4)
    # Force the ANN path (no inverted-index shortcut): batching matters most
    # where every request runs a search, and results stay comparable.
    server = OnlineServer(model, cache_capacity=256, ann_cells=16,
                          ann_nprobe=4, use_inverted_index=False)
    num_users = dataset.config.num_users
    num_queries = dataset.config.num_queries
    server.warm_caches(range(num_users), range(num_queries))
    requests = [(i % num_users, (3 * i + 1) % num_queries) for i in range(256)]
    batch_size = 64
    server.serve_batch(requests, k=10)   # warm embedding + neighbor caches

    best_ratio = 0.0
    rows = []
    for round_index in range(3):
        start = time.perf_counter()
        sequential = [server.serve(user, query, k=10)
                      for user, query in requests]
        sequential_s = time.perf_counter() - start

        start = time.perf_counter()
        batched = []
        for offset in range(0, len(requests), batch_size):
            batched.extend(server.serve_batch(requests[offset:offset + batch_size],
                                              k=10))
        batched_s = time.perf_counter() - start

        ratio = sequential_s / batched_s
        best_ratio = max(best_ratio, ratio)
        rows.append({
            "round": round_index,
            "sequential_qps": round(len(requests) / sequential_s, 1),
            "batched_qps": round(len(requests) / batched_s, 1),
            "speedup": round(ratio, 2),
        })

    # Equal results: same ids for every request; scores at serving precision.
    for one, many in zip(sequential, batched):
        np.testing.assert_array_equal(one.item_ids, many.item_ids)
        np.testing.assert_allclose(one.scores, many.scores, rtol=3e-6,
                                   atol=1e-7)

    print()
    print(format_table(rows, title=f"Batched (batch={batch_size}) vs "
                                   f"sequential serving throughput"))
    assert best_ratio >= 5.0, (
        f"batched serving only {best_ratio:.1f}x faster than sequential")
    save_results([ExperimentResult(
        "fig9_batched_throughput",
        "Batched vs sequential serving throughput", rows=rows,
        paper_reference={"claim": "batched vectorized serving sustains much "
                                  "higher per-machine QPS"})],
        RESULTS_DIR)
