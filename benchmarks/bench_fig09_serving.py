"""Fig. 9 — online response time versus queries per second.

The paper serves 1K-50K QPS with average response times of ~2.6-3.6 ms; when
QPS grows 10x the response time grows less than 2x, thanks to the neighbor
caches, the decoupled asynchronous aggregation and the inverted index.  The
reproduction measures the per-request service time of the serving stack and
sweeps QPS through the M/M/c queueing model; the shape check is the
sub-linear growth.
"""

from _common import RESULTS_DIR, quick_train
from repro.core import ZoomerConfig, ZoomerModel
from repro.experiments import ExperimentResult, format_table, save_results
from repro.serving import OnlineServer

QPS_SWEEP = [1000, 2000, 3000, 4000, 5000, 10000, 20000, 30000, 40000, 50000]


def test_fig9_response_time_vs_qps(benchmark, bench_taobao):
    dataset, train, _ = bench_taobao

    def run():
        model = ZoomerModel(dataset.graph,
                            ZoomerConfig(embedding_dim=16, fanouts=(5, 3),
                                         seed=0))
        quick_train(model, train[:300], max_batches=4)
        server = OnlineServer(model, cache_capacity=30, ann_cells=8,
                              ann_nprobe=3, num_servers=4096)
        active_users = list(range(min(20, dataset.config.num_users)))
        active_queries = list(range(min(20, dataset.config.num_queries)))
        server.warm_caches(active_users, active_queries)
        server.build_inverted_index(active_queries)
        calibration = [(s.user_id, s.query_id) for s in dataset.sessions[:20]]
        rows = server.qps_sweep(QPS_SWEEP, calibration)
        hit_rate = server.cache.hit_rate()
        return rows, hit_rate

    rows, hit_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Fig. 9: online response time vs QPS"))
    print(f"neighbor-cache hit rate during calibration: {hit_rate:.2f}")
    low = next(r["response_ms"] for r in rows if r["qps"] == 1000)
    high = next(r["response_ms"] for r in rows if r["qps"] == 10000)
    print(f"response time at 1K QPS: {low:.3f} ms, at 10K QPS: {high:.3f} ms "
          f"(paper: 10x QPS -> <2x response time)")
    # Shape checks: monotone growth, and 10x QPS costs less than 2x latency.
    times = [r["response_ms"] for r in rows]
    assert times == sorted(times)
    assert high / low < 2.0
    save_results([ExperimentResult(
        "fig9", "Online response time vs QPS", rows=rows,
        paper_reference={"rt_range_ms": "2.6-3.6",
                         "claim": "10x QPS -> <2x response time"})],
        RESULTS_DIR)
