"""Fig. 13 — heatmaps of coupling coefficients (model interpretability).

The paper fixes a user and varies the query (13a), and fixes a query and
varies the user (13b), plotting the edge-level attention weights over a set
of items.  The qualitative claim is that the weights change when the focal
points change, so the same ego node gets multiple focal-dependent
representations.  The bench trains Zoomer briefly, renders both heatmaps and
checks the weights (a) are proper distributions and (b) actually vary across
focal points.
"""

import numpy as np

from _common import RESULTS_DIR, quick_train
from repro.core import ZoomerConfig, ZoomerModel
from repro.experiments import (
    ExperimentResult,
    coupling_heatmap_fixed_query,
    coupling_heatmap_fixed_user,
    format_table,
    save_results,
)
from repro.experiments.interpretability import (
    heatmap_variation,
    render_ascii_heatmap,
)


def test_fig13_coupling_coefficient_heatmaps(benchmark, bench_taobao):
    dataset, train, _ = bench_taobao

    def run():
        model = ZoomerModel(dataset.graph,
                            ZoomerConfig(embedding_dim=16, fanouts=(5, 3),
                                         seed=0))
        quick_train(model, train[:300], max_batches=4)
        rng = np.random.default_rng(0)
        user = 0
        queries = rng.choice(dataset.config.num_queries, size=6, replace=False)
        items = rng.choice(dataset.config.num_items, size=8, replace=False)
        users = rng.choice(dataset.config.num_users, size=6, replace=False)
        fixed_user = coupling_heatmap_fixed_user(model, user, queries, items)
        fixed_query = coupling_heatmap_fixed_query(model, int(queries[0]),
                                                   users, items)
        return fixed_user, fixed_query, queries, users, items

    fixed_user, fixed_query, queries, users, items = benchmark.pedantic(
        run, rounds=1, iterations=1)
    print()
    print("Fig. 13(a): fixed user, varying query (rows=queries, cols=items)")
    print(render_ascii_heatmap(fixed_user, [f"q{q}" for q in queries],
                               [f"i{i}" for i in items]))
    print()
    print("Fig. 13(b): fixed query, varying user (rows=users, cols=items)")
    print(render_ascii_heatmap(fixed_query, [f"u{u}" for u in users],
                               [f"i{i}" for i in items]))
    variation_a = heatmap_variation(fixed_user)
    variation_b = heatmap_variation(fixed_query)
    rows = [
        {"heatmap": "fixed_user (13a)", **{k: round(v, 4)
                                           for k, v in variation_a.items()}},
        {"heatmap": "fixed_query (13b)", **{k: round(v, 4)
                                            for k, v in variation_b.items()}},
    ]
    print()
    print(format_table(rows, title="Coupling-coefficient variation across focals"))
    # Each row is an attention distribution over the items.
    np.testing.assert_allclose(fixed_user.sum(axis=1), 1.0, atol=1e-6)
    np.testing.assert_allclose(fixed_query.sum(axis=1), 1.0, atol=1e-6)
    # The weights must respond to the focal points (the paper's key claim).
    assert variation_a["mean_row_std"] > 0.0
    assert variation_b["mean_row_std"] > 0.0
    save_results([ExperimentResult(
        "fig13", "Coupling-coefficient heatmaps", rows=rows,
        paper_reference={"claim": "edge weights change when focal points change"})],
        RESULTS_DIR)
