"""Batched-vs-sequential equivalence tests for the vectorized sampling engine.

The engine's contract: a single-node call is a batch-of-one, and a batched
call over ``N`` nodes reads the random stream exactly as ``N`` sequential
single calls — so both paths return identical sub-graphs under a fixed
seed.  These tests pin that contract, the padding/edge-case behaviour, and
the statistical correctness of the alias draws.
"""

import numpy as np
import pytest

from repro.core import ZoomerConfig
from repro.core.roi import ROIBuilder
from repro.graph import (
    AliasTable,
    BatchedAliasTable,
    HeteroGraph,
    ShardedGraphStore,
)
from repro.graph.batch import PAD_NODE, segment_offsets
from repro.graph.schema import EdgeType, NodeType, RelationSpec, taobao_schema
from repro.sampling import FocalBiasedSampler, UniformNeighborSampler
from repro.training.dataloader import ImpressionDataLoader, PresampleConfig


CLICK = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)


def _graph(num_users=40, num_items=80, num_edges=400, seed=0,
           isolated_users=3):
    """Synthetic graph whose last ``isolated_users`` users have no edges."""
    rng = np.random.default_rng(seed)
    graph = HeteroGraph(taobao_schema(feature_dim=6))
    graph.add_nodes(NodeType.USER, rng.normal(size=(num_users, 6)))
    graph.add_nodes(NodeType.QUERY, rng.normal(size=(12, 6)))
    graph.add_nodes(NodeType.ITEM, rng.normal(size=(num_items, 6)))
    connectable = num_users - isolated_users
    src = rng.integers(0, connectable, size=num_edges)
    dst = rng.integers(0, num_items, size=num_edges)
    weights = rng.random(num_edges) + 0.05
    graph.add_edges(CLICK, src, dst, weights, symmetric=True)
    graph.add_edges(RelationSpec(NodeType.USER, EdgeType.SEARCH, NodeType.QUERY),
                    rng.integers(0, connectable, size=60),
                    rng.integers(0, 12, size=60), symmetric=True)
    return graph.finalize()


class TestRelationBatchEquivalence:
    @pytest.mark.parametrize("weighted", [True, False])
    @pytest.mark.parametrize("replace", [False, True])
    def test_batch_matches_sequential_loop(self, weighted, replace):
        graph = _graph()
        relation = graph.relation(CLICK)
        nodes = np.arange(40)
        batched = relation.sample_neighbors_batch(
            nodes, 5, rng=np.random.default_rng(7), weighted=weighted,
            replace=replace)
        rng = np.random.default_rng(7)
        for row, node in enumerate(nodes):
            ids, weights = relation.sample_neighbors(
                int(node), 5, rng=rng, weighted=weighted, replace=replace)
            batch_ids, batch_weights = batched.row(row)
            np.testing.assert_array_equal(ids, batch_ids)
            np.testing.assert_allclose(weights, batch_weights)

    def test_empty_neighborhood_rows_are_padded(self):
        graph = _graph(isolated_users=5)
        relation = graph.relation(CLICK)
        isolated = np.arange(35, 40)
        batch = relation.sample_neighbors_batch(
            isolated, 4, rng=np.random.default_rng(0))
        assert np.all(batch.counts == 0)
        assert np.all(batch.ids == PAD_NODE)
        assert np.all(batch.weights == 0.0)

    def test_k_larger_than_degree_keeps_all_neighbors(self):
        graph = _graph()
        relation = graph.relation(CLICK)
        nodes = np.arange(30)
        batch = relation.sample_neighbors_batch(
            nodes, 1000, rng=np.random.default_rng(0))
        degrees = relation.degrees()[nodes]
        np.testing.assert_array_equal(batch.counts, degrees)
        for row, node in enumerate(nodes):
            expected_ids, expected_weights = relation.neighbors(int(node))
            ids, weights = batch.row(row)
            np.testing.assert_array_equal(ids, expected_ids)
            np.testing.assert_allclose(weights, expected_weights)

    def test_alias_draws_match_edge_weight_distribution(self):
        """Batched alias draws follow the edge-weight distribution."""
        graph = _graph(num_edges=300)
        relation = graph.relation(CLICK)
        degrees = relation.degrees()
        node = int(np.argmax(degrees))
        ids, weights = relation.neighbors(node)
        draws = 40_000
        batch = relation.sample_neighbors_batch(
            np.full(draws, node), 1, rng=np.random.default_rng(3),
            replace=True)
        sampled = batch.ids[:, 0]
        # Aggregate by neighbor id (parallel edges sum their weights).
        unique_ids = np.unique(ids)
        expected = np.array([weights[ids == i].sum() for i in unique_ids])
        expected = expected / expected.sum()
        observed = np.array([(sampled == i).sum() for i in unique_ids]) / draws
        np.testing.assert_allclose(observed, expected, atol=0.02)

    def test_uniform_draws_are_uniform(self):
        graph = _graph(num_edges=300)
        relation = graph.relation(CLICK)
        node = int(np.argmax(relation.degrees()))
        ids, _ = relation.neighbors(node)
        draws = 30_000
        batch = relation.sample_neighbors_batch(
            np.full(draws, node), 1, rng=np.random.default_rng(4),
            weighted=False, replace=True)
        unique_ids, expected_counts = np.unique(ids, return_counts=True)
        expected = expected_counts / ids.size
        observed = np.array([(batch.ids[:, 0] == i).sum()
                             for i in unique_ids]) / draws
        np.testing.assert_allclose(observed, expected, atol=0.02)


class TestUnionAndSubgraphBatch:
    def test_union_batch_tags_relations(self):
        graph = _graph()
        batch = graph.sample_neighbors_batch(
            NodeType.USER, np.arange(20), 4, rng=np.random.default_rng(1))
        mask = batch.valid_mask
        assert batch.rel_ids is not None
        assert np.all(batch.rel_ids[mask] >= 0)
        assert np.all(batch.rel_ids[~mask] == -1)
        specs = batch.specs
        for row in range(20):
            for col in range(int(batch.counts[row])):
                spec = specs[batch.rel_ids[row, col]]
                assert spec.src_type == NodeType.USER
                neighbor = batch.ids[row, col]
                ids, _ = graph.relation(spec).neighbors(row)
                assert neighbor in ids

    def test_subgraph_batch_matches_trees(self):
        graph = _graph()
        egos = np.arange(15)
        subgraph = graph.sample_subgraph_batch(
            NodeType.USER, egos, (4, 2), rng=np.random.default_rng(9))
        trees = subgraph.to_trees()
        assert len(trees) == 15
        assert subgraph.num_nodes() == sum(t.num_nodes() for t in trees)
        assert subgraph.num_edges() == sum(t.num_edges() for t in trees)
        for tree in trees:
            assert len(tree.children) <= 4
            for _, child, _ in tree.children:
                assert len(child.children) <= 2

    def test_subgraph_batch_rejects_bad_fanouts(self):
        graph = _graph()
        with pytest.raises(ValueError):
            graph.sample_subgraph_batch(NodeType.USER, [0], (0,))

    def test_isolated_ego_gets_empty_tree(self):
        graph = _graph(isolated_users=5)
        subgraph = graph.sample_subgraph_batch(
            NodeType.USER, [37], (3, 2), rng=np.random.default_rng(0))
        trees = subgraph.to_trees()
        assert trees[0].num_nodes() == 1

    def test_uniform_sampler_sample_is_batch_of_one(self):
        """``sample`` must be exactly ``sample_batch`` with one ego.

        (Multi-ego batches expand hop-major across the whole batch, so they
        are not stream-identical to an ego-major loop — one-hop calls are,
        which ``TestRelationBatchEquivalence`` pins.)
        """
        graph = _graph()
        for ego in (0, 1, 2):
            single = UniformNeighborSampler(seed=5).sample(
                graph, NodeType.USER, ego, (3, 2))
            batch_of_one = UniformNeighborSampler(seed=5).sample_batch(
                graph, NodeType.USER, [ego], (3, 2))[0]
            assert _tree_signature(single) == _tree_signature(batch_of_one)


def _tree_signature(tree):
    """Hashable structural signature of a sampled tree."""
    return (tree.node_type, tree.node_id,
            tuple((spec, _tree_signature(child), round(weight, 12))
                  for spec, child, weight in tree.children))


class TestFocalBatchEquivalence:
    def test_focal_batch_matches_single_ego_trees(self):
        graph = _graph()
        sampler = FocalBiasedSampler(seed=0)
        egos = [0, 1, 2, 5, 8]
        focals = graph.features[NodeType.USER][egos] + 0.1
        batched = sampler.sample_batch(graph, NodeType.USER, egos, (3, 2),
                                       focals)
        for index, ego in enumerate(egos):
            single = sampler.sample(graph, NodeType.USER, ego, (3, 2),
                                    focals[index])
            assert _tree_signature(batched[index]) == _tree_signature(single)

    def test_focal_batch_with_fanout_above_every_degree(self):
        """Regression: fanout larger than every degree in a hop's group.

        The padded top-k block is narrower than ``k`` in this case; it
        must be re-padded, not boolean-masked with a ``k``-wide mask.
        """
        graph = _graph()
        sampler = FocalBiasedSampler(seed=0)
        egos = [0, 1, 2, 36]
        focals = graph.features[NodeType.USER][egos]
        batched = sampler.sample_batch(graph, NodeType.USER, egos, (50, 40),
                                       focals)
        assert len(batched) == 4
        for index, ego in enumerate(egos):
            single = sampler.sample(graph, NodeType.USER, ego, (50, 40),
                                    focals[index])
            assert _tree_signature(batched[index]) == _tree_signature(single)

    def test_roi_build_batch_matches_looped_build(self):
        graph = _graph()
        config = ZoomerConfig(embedding_dim=6, fanouts=(3, 2), seed=0)
        builder_a = ROIBuilder(config)
        builder_b = ROIBuilder(config)
        users = [0, 1, 2]
        queries = [0, 1, 2]
        batched = builder_a.build_batch(graph, users, queries)
        for user, query, roi in zip(users, queries, batched):
            single = builder_b.build(graph, user, query)
            assert roi.num_nodes() == single.num_nodes()
            for ego_type in roi.ego_trees:
                assert (_tree_signature(roi.tree(ego_type))
                        == _tree_signature(single.tree(ego_type)))


class TestBatchedAliasTable:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchedAliasTable(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            BatchedAliasTable(np.array([0, 2]), np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            BatchedAliasTable(np.array([0, 2]), np.array([1.0]))

    def test_zero_weight_rows_fall_back_to_uniform(self):
        indptr = np.array([0, 3])
        table = BatchedAliasTable(indptr, np.zeros(3))
        draws = table.sample(np.zeros(20_000, dtype=np.int64), 1,
                             np.random.default_rng(0))[:, 0]
        counts = np.bincount(draws, minlength=3) / draws.size
        np.testing.assert_allclose(counts, np.ones(3) / 3, atol=0.02)

    def test_rejects_empty_rows(self):
        table = BatchedAliasTable(np.array([0, 0, 2]),
                                  np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            table.sample(np.array([0]), 2)

    def test_alias_table_accepts_shape_tuples(self):
        table = AliasTable([1.0, 2.0, 7.0])
        draws = table.sample((8, 4), np.random.default_rng(0))
        assert draws.shape == (8, 4)
        assert np.all((draws >= 0) & (draws < 3))


class TestShardedStoreBatch:
    def test_batch_routing_matches_sequential_accounting(self):
        graph = _graph()
        store_a = ShardedGraphStore(graph, num_shards=3, replication_factor=2)
        store_b = ShardedGraphStore(graph, num_shards=3, replication_factor=2)
        nodes = list(range(20))
        batch = store_a.sample_neighbors_batch(
            CLICK, nodes, 3, rng=np.random.default_rng(11))
        rng = np.random.default_rng(11)
        for row, node in enumerate(nodes):
            ids, weights = store_b.sample_neighbors(CLICK, node, 3, rng=rng)
            batch_ids, batch_weights = batch.row(row)
            np.testing.assert_array_equal(ids, batch_ids)
            np.testing.assert_allclose(weights, batch_weights)
        requests_a = sorted(s.requests for s in store_a.server_stats())
        requests_b = sorted(s.requests for s in store_b.server_stats())
        assert requests_a == requests_b
        assert sum(requests_a) == len(nodes)

    def test_store_subgraph_batch_accounts_frontier(self):
        graph = _graph()
        store = ShardedGraphStore(graph, num_shards=2, replication_factor=1)
        subgraph = store.sample_subgraph_batch(
            NodeType.USER, np.arange(10), (3, 2),
            rng=np.random.default_rng(0))
        assert len(subgraph.to_trees()) == 10
        expanded = 10 + (subgraph.layers[0].num_edges
                         if len(subgraph.layers) > 1 else 0)
        assert sum(s.requests for s in store.server_stats()) == expanded

    def test_partitioner_is_process_stable(self):
        from repro.graph import HashPartitioner
        partitioner = HashPartitioner(num_shards=4, seed=17)
        shards = partitioner.shard_of_batch("user", np.arange(16))
        # Pinned values: the assignment must never depend on interpreter
        # hash salting (PYTHONHASHSEED), so it is reproducible here.
        assert shards.tolist() == [
            int(partitioner.shard_of("user", i)) for i in range(16)]
        assert set(shards.tolist()) <= set(range(4))


class TestSegmentHelpers:
    def test_segment_offsets(self):
        rows, cols = segment_offsets(np.array([2, 0, 3]))
        np.testing.assert_array_equal(rows, [0, 0, 2, 2, 2])
        np.testing.assert_array_equal(cols, [0, 1, 0, 1, 2])


class TestPresampledDataloader:
    def test_loader_emits_presampled_trees(self):
        from repro.data.logs import ImpressionRecord

        graph = _graph()
        examples = [ImpressionRecord(user_id=i % 10, query_id=i % 5,
                                     item_id=i % 20, label=i % 2)
                    for i in range(32)]
        loader = ImpressionDataLoader(
            examples, batch_size=8, shuffle=False,
            presample=PresampleConfig(graph=graph, fanouts=(3, 2),
                                      user_type=NodeType.USER,
                                      query_type=NodeType.QUERY))
        batch = next(iter(loader))
        assert batch.has_presampled_subgraphs
        assert set(batch.user_trees) == set(np.unique(batch.user_ids))
        assert set(batch.query_trees) == set(np.unique(batch.query_ids))
        for user_id, tree in batch.user_trees.items():
            assert tree.node_type == NodeType.USER
            assert tree.node_id == user_id
            assert len(tree.children) <= 3

    def test_trainer_threads_presampled_trees_into_model(self):
        from repro.baselines import GraphSAGEModel
        from repro.data.logs import ImpressionRecord
        from repro.training import Trainer, TrainingConfig

        graph = _graph()
        examples = [ImpressionRecord(user_id=i % 10, query_id=i % 5,
                                     item_id=i % 20, label=i % 2)
                    for i in range(64)]
        model = GraphSAGEModel(graph, embedding_dim=6, fanouts=(3, 2), seed=0)
        trainer = Trainer(model, TrainingConfig(
            epochs=1, batch_size=16, presample_subgraphs=True,
            max_batches_per_epoch=2))
        result = trainer.train(examples)
        assert result.iterations == 2
        assert model._tree_cache  # populated by the presampled batches
        cached_types = {key[0] for key in model._tree_cache}
        assert cached_types <= {model.user_type, model.query_type}

    def test_presampling_skips_non_engine_samplers(self):
        """Walk/cluster samplers keep their own semantics: no presampling.

        PixieModel interprets tree weights as random-walk visit counts;
        engine-drawn trees would silently replace that policy, so the
        trainer must not presample for samplers that do not override
        ``sample_batch``.
        """
        from repro.baselines import GraphSAGEModel, PixieModel
        from repro.training import Trainer, TrainingConfig

        graph = _graph()
        config = TrainingConfig(epochs=1, presample_subgraphs=True)
        pixie_trainer = Trainer(PixieModel(graph, embedding_dim=6, seed=0),
                                config)
        assert pixie_trainer._presample_config() is None
        sage_trainer = Trainer(GraphSAGEModel(graph, embedding_dim=6, seed=0),
                               config)
        presample = sage_trainer._presample_config()
        assert presample is not None
        assert presample.weighted is False  # uniform sampler semantics
