"""Tests for the unified ``repro.api`` surface.

Covers the three tentpole pieces: the plugin registries (including the error
paths — unknown names list the known ones), the declarative
:class:`ExperimentSpec` (dict/JSON round-trips reproduce identical training
results under a fixed seed, cross-layer validation), and the staged
:class:`Pipeline` facade (bit-identical to the hand-wired path).
"""

import numpy as np
import pytest

from repro.api import (
    DATASETS,
    MODELS,
    SAMPLERS,
    DaemonSpec,
    DataSpec,
    ExperimentSpec,
    ModelSpec,
    Pipeline,
    PipelineError,
    Registry,
    RegistryError,
    ServingSpec,
    TrainSpec,
    build_model,
    build_sampler,
    load_dataset,
)
from repro.baselines import ALL_BASELINES, GraphSAGEModel
from repro.core import ZoomerConfig, ZoomerModel
from repro.data import train_test_split_examples
from repro.sampling.base import NeighborSampler
from repro.serving import OnlineServer
from repro.training import Trainer, TrainingConfig

TINY_TAOBAO = {"num_users": 30, "num_queries": 24, "num_items": 60,
               "num_categories": 6, "sessions_per_user": 4.0, "seed": 0}


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        dataset=DataSpec(name="synthetic-taobao", params=dict(TINY_TAOBAO),
                         max_train_examples=200, max_test_examples=80),
        model=ModelSpec(name="zoomer", embedding_dim=8, fanouts=(3, 2)),
        training=TrainSpec(epochs=1, batch_size=32, learning_rate=0.05,
                           max_batches_per_epoch=4),
        serving=ServingSpec(ann_cells=4, warm_users=10, warm_queries=10),
        seed=0)
    base.update(overrides)
    return ExperimentSpec(**base)


# ---------------------------------------------------------------------- #
# Registries
# ---------------------------------------------------------------------- #
class TestRegistries:
    def test_builtins_registered(self):
        assert "Zoomer" in MODELS
        for name in ALL_BASELINES:
            assert name in MODELS
        for name in ("uniform", "importance", "random-walk", "cluster",
                     "focal"):
            assert name in SAMPLERS
        for name in ("synthetic-taobao", "movielens", "behavior-logs"):
            assert name in DATASETS

    def test_lookup_is_case_insensitive(self):
        assert MODELS.get("zoomer").name == "Zoomer"
        assert MODELS.get("PINSAGE").name == "PinSage"
        assert MODELS.get("graphsage").factory is GraphSAGEModel

    def test_unknown_name_lists_known_names(self):
        with pytest.raises(RegistryError) as excinfo:
            MODELS.get("does-not-exist")
        message = str(excinfo.value)
        assert "does-not-exist" in message
        assert "Zoomer" in message and "PinSage" in message

    def test_register_decorator_and_duplicate_rejection(self):
        registry = Registry("widget")

        @registry.register("alpha", aliases=("a",), flavour="crunchy")
        def make_alpha(**kwargs):
            return ("alpha", kwargs)

        assert registry.names() == ("alpha",)
        assert registry.get("A").metadata["flavour"] == "crunchy"
        assert registry.create("alpha", size=2) == ("alpha", {"size": 2})
        with pytest.raises(RegistryError):
            registry.register("Alpha", lambda: None)
        with pytest.raises(RegistryError):
            registry.register("beta", lambda: None, aliases=("a",))

    def test_build_model_matches_hand_construction(self):
        dataset = load_dataset("synthetic-taobao", **TINY_TAOBAO)
        via_registry = build_model("zoomer", dataset.graph, embedding_dim=8,
                                   fanouts=(3, 2), seed=0)
        by_hand = ZoomerModel(dataset.graph, ZoomerConfig(
            embedding_dim=8, fanouts=(3, 2), seed=0))
        assert isinstance(via_registry, ZoomerModel)
        for p1, p2 in zip(via_registry.parameters(), by_hand.parameters()):
            np.testing.assert_array_equal(p1.numpy(), p2.numpy())

    def test_build_model_sampler_override(self):
        dataset = load_dataset("synthetic-taobao", **TINY_TAOBAO)
        model = build_model("GraphSage", dataset.graph, embedding_dim=8,
                            fanouts=(3, 2), seed=0, sampler="importance")
        from repro.sampling import ImportanceNeighborSampler
        assert isinstance(model.sampler, ImportanceNeighborSampler)
        with pytest.raises(RegistryError):
            build_model("zoomer", dataset.graph, sampler="uniform")
        with pytest.raises(RegistryError):
            build_model("STAMP", dataset.graph, sampler="uniform")

    def test_sampler_engine_metadata_matches_reality(self):
        for name in SAMPLERS.names():
            sampler = build_sampler(name, seed=0)
            overrides = type(sampler).sample_batch \
                is not NeighborSampler.sample_batch
            assert SAMPLERS.get(name).metadata["engine_backed"] == overrides, \
                f"engine_backed metadata drifted for sampler {name!r}"


# ---------------------------------------------------------------------- #
# ExperimentSpec serialization + validation
# ---------------------------------------------------------------------- #
class TestExperimentSpec:
    def test_dict_round_trip(self):
        spec = tiny_spec()
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt == spec

    def test_json_round_trip(self):
        spec = tiny_spec(
            model=ModelSpec(name="GraphSage", embedding_dim=8, fanouts=(3, 2),
                            sampler="uniform"))
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert isinstance(rebuilt.model.fanouts, tuple)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown spec section"):
            ExperimentSpec.from_dict({"modle": {}})
        with pytest.raises(ValueError, match="unknown key"):
            ExperimentSpec.from_dict({"model": {"embeding_dim": 8}})

    def test_validate_unknown_names_list_known(self):
        with pytest.raises(RegistryError, match="known model"):
            tiny_spec(model=ModelSpec(name="nope")).validate()
        with pytest.raises(RegistryError, match="known dataset"):
            tiny_spec(dataset=DataSpec(name="nope")).validate()
        with pytest.raises(RegistryError, match="known sampler"):
            tiny_spec(model=ModelSpec(name="GraphSage",
                                      sampler="nope")).validate()

    def test_cross_layer_validation(self):
        # Zoomer builds its own focal-biased sampler.
        with pytest.raises(ValueError, match="sampler"):
            tiny_spec(model=ModelSpec(name="zoomer",
                                      sampler="uniform")).validate()
        # Presampling needs an engine-backed sampler.
        with pytest.raises(ValueError, match="engine-backed"):
            tiny_spec(
                model=ModelSpec(name="GraphSage", sampler="cluster"),
                training=TrainSpec(presample_subgraphs=True)).validate()
        tiny_spec(model=ModelSpec(name="GraphSage", sampler="uniform"),
                  training=TrainSpec(presample_subgraphs=True)).validate()
        # A random-walk sampler must walk at least as deep as the fanouts.
        with pytest.raises(ValueError, match="walk"):
            tiny_spec(model=ModelSpec(
                name="Pixie", fanouts=(3, 2, 2), sampler="random-walk",
                sampler_params={"walk_length": 2})).validate()
        tiny_spec(model=ModelSpec(
            name="Pixie", fanouts=(3, 2), sampler="random-walk",
            sampler_params={"walk_length": 2})).validate()

    def test_range_validation(self):
        with pytest.raises(ValueError, match="fanouts"):
            tiny_spec(model=ModelSpec(name="zoomer", fanouts=())).validate()
        with pytest.raises(ValueError, match="train_fraction"):
            tiny_spec(dataset=DataSpec(name="synthetic-taobao",
                                       train_fraction=1.0)).validate()
        with pytest.raises(ValueError, match="num_shards"):
            tiny_spec(serving=ServingSpec(num_shards=0)).validate()
        with pytest.raises(ValueError, match="nprobe"):
            tiny_spec(serving=ServingSpec(ann_cells=4,
                                          ann_nprobe=5)).validate()
        with pytest.raises(ValueError):
            tiny_spec(training=TrainSpec(epochs=0)).validate()

    def test_every_section_field_is_validated(self):
        # The SPEC001 lint contract: each field either has a range check or
        # at least a type assertion, so garbage fails at validate time.
        with pytest.raises(ValueError, match="num_servers"):
            tiny_spec(serving=ServingSpec(num_servers=0)).validate()
        with pytest.raises(ValueError, match="use_inverted_index"):
            tiny_spec(serving=ServingSpec(
                use_inverted_index="yes")).validate()
        with pytest.raises(ValueError, match="dataset.params"):
            tiny_spec(dataset=DataSpec(name="synthetic-taobao",
                                       params=[1, 2])).validate()
        with pytest.raises(ValueError, match="model.params"):
            tiny_spec(model=ModelSpec(name="zoomer",
                                      params="scale=2")).validate()
        with pytest.raises(ValueError, match="verbose"):
            tiny_spec(training=TrainSpec(verbose="loud")).validate()
        with pytest.raises(ValueError, match="training.seed"):
            tiny_spec(training=TrainSpec(seed="zero")).validate()
        spec = tiny_spec()
        spec.seed = "zero"
        with pytest.raises(ValueError, match="seed must be an int"):
            spec.validate()

    def test_spec_defaults_track_legacy_configs(self):
        """TrainSpec/ServingSpec defaults must not drift from their targets.

        The pipeline promises results bit-identical to hand-wiring; that
        only holds while a default spec means a default TrainingConfig /
        OnlineServer.
        """
        import dataclasses
        import inspect

        config_defaults = {f.name: f.default
                           for f in dataclasses.fields(TrainingConfig)}
        for f in dataclasses.fields(TrainSpec):
            if f.name == "seed":
                continue   # None = inherit the experiment seed, by design
            assert config_defaults[f.name] == f.default, \
                f"TrainSpec.{f.name} default drifted from TrainingConfig"
        server_defaults = {
            name: parameter.default
            for name, parameter
            in inspect.signature(OnlineServer.__init__).parameters.items()
            if parameter.default is not inspect.Parameter.empty}
        pipeline_only = {"serve_batch_size", "warm_users", "warm_queries"}
        for f in dataclasses.fields(ServingSpec):
            if f.name in pipeline_only:
                continue
            assert server_defaults[f.name] == f.default, \
                f"ServingSpec.{f.name} default drifted from OnlineServer"

    def test_training_config_inherits_seed(self):
        spec = tiny_spec(seed=9)
        assert spec.training_config().seed == 9
        spec.training.seed = 3
        assert spec.training_config().seed == 3


# ---------------------------------------------------------------------- #
# Pipeline: staged execution, equivalence with the hand-wired path
# ---------------------------------------------------------------------- #
class TestPipeline:
    @pytest.fixture(scope="class")
    def fitted(self):
        return Pipeline(tiny_spec()).fit()

    def test_matches_hand_wired_path(self, fitted):
        """The facade reproduces the manual wiring bit for bit."""
        dataset = load_dataset("synthetic-taobao", **TINY_TAOBAO)
        train, test = train_test_split_examples(dataset.impressions, 0.9,
                                                seed=0)
        train, test = train[:200], test[:80]
        model = ZoomerModel(dataset.graph,
                            ZoomerConfig(embedding_dim=8, fanouts=(3, 2),
                                         seed=0))
        trainer = Trainer(model, TrainingConfig(
            epochs=1, batch_size=32, learning_rate=0.05,
            max_batches_per_epoch=4, seed=0))
        result = trainer.train(train, test)

        assert fitted.result.epoch_losses == result.epoch_losses
        assert fitted.result.iterations == result.iterations
        assert fitted.result.final_metrics.auc == result.final_metrics.auc

        server = OnlineServer(model, cache_capacity=30, ann_cells=4,
                              ann_nprobe=3, posting_length=100, num_shards=1,
                              seed=0)
        server.prepare(range(10), range(10))
        deployed = fitted.deploy()
        requests = [(s.user_id, s.query_id) for s in dataset.sessions[:8]]
        for mine, theirs in zip(deployed.serve_batch(requests, k=5),
                                server.serve_batch(requests, k=5)):
            np.testing.assert_array_equal(mine.item_ids, theirs.item_ids)
            np.testing.assert_allclose(mine.scores, theirs.scores)

    def test_round_tripped_spec_reproduces_training(self, fitted):
        spec = ExperimentSpec.from_json(tiny_spec().to_json())
        rerun = Pipeline(spec).fit()
        assert rerun.result.epoch_losses == fitted.result.epoch_losses
        assert rerun.result.final_metrics.auc == fitted.result.final_metrics.auc

    def test_spec_dict_accepted_directly(self):
        pipeline = Pipeline(tiny_spec().to_dict())
        assert pipeline.spec == tiny_spec()

    def test_stage_order_enforced(self):
        pipeline = Pipeline(tiny_spec())
        with pytest.raises(PipelineError):
            pipeline.evaluate()

    def test_evaluate_reports_hit_rates(self, fitted):
        evaluation = fitted.evaluate(ks=(5, 10), candidate_pool=60,
                                     max_requests=5)
        assert set(evaluation["hit_rates"]) == {5, 10}
        assert 0.0 <= evaluation["auc"] <= 1.0

    def test_no_test_split_disables_evaluation(self):
        spec = tiny_spec()
        spec.dataset.max_test_examples = 0
        pipeline = Pipeline(spec).fit()
        assert pipeline.test_examples is None
        assert pipeline.result.final_metrics is None
        with pytest.raises(PipelineError):
            pipeline.evaluate()

    def test_behavior_logs_dataset_end_to_end(self):
        sessions = [[u, (u * 3) % 8, [(u + k) % 20 for k in range(3)]]
                    for u in range(12)]
        spec = ExperimentSpec(
            dataset=DataSpec(name="behavior-logs",
                             params={"sessions": sessions, "seed": 1}),
            model=ModelSpec(name="GraphSage", embedding_dim=8,
                            fanouts=(3, 2)),
            training=TrainSpec(epochs=1, batch_size=16),
            serving=ServingSpec(ann_cells=4, warm_users=5, warm_queries=5),
            seed=1)
        server = Pipeline(spec).fit().deploy()
        results = server.serve_batch([(0, 0), (1, 3)], k=3)
        assert len(results) == 2
        assert all(len(r.item_ids) == 3 for r in results)

    def test_deploy_applies_serving_spec(self):
        spec = tiny_spec(serving=ServingSpec(ann_cells=4, num_shards=2,
                                             warm_users=5, warm_queries=5))
        pipeline = Pipeline(spec)
        server = pipeline.deploy()   # deploy() fits lazily
        assert pipeline.result is not None
        assert server.num_shards == 2
        assert len(server.cache) > 0
        assert len(server.inverted_index) > 0


class TestDaemonSpec:
    def test_defaults_validate_and_round_trip(self):
        spec = tiny_spec()
        spec.daemon = DaemonSpec(max_batch_size=8, max_wait_ms=2.0,
                                 max_queue_depth=32, shed_policy="drop-oldest",
                                 tenant_quotas={"free": 5.0}, quota_burst=2.0)
        spec.validate()
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.daemon.tenant_quotas == {"free": 5.0}

    def test_queue_depth_must_cover_batch_size(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            DaemonSpec(max_batch_size=64, max_queue_depth=32).validate()

    def test_range_and_policy_validation(self):
        with pytest.raises(ValueError, match="shed_policy"):
            DaemonSpec(shed_policy="panic").validate()
        with pytest.raises(ValueError, match="port"):
            DaemonSpec(port=70_000).validate()
        with pytest.raises(ValueError, match="host"):
            DaemonSpec(host="").validate()
        with pytest.raises(ValueError, match="quota"):
            DaemonSpec(tenant_quotas={"free": 0.0}).validate()
        with pytest.raises(ValueError, match="quota"):
            DaemonSpec(tenant_quotas={"": 1.0}).validate()
        with pytest.raises(ValueError, match="quota_burst"):
            DaemonSpec(quota_burst=-1.0).validate()

    def test_experiment_validate_covers_daemon_section(self):
        spec = tiny_spec()
        spec.daemon = DaemonSpec(max_batch_size=64, max_queue_depth=32)
        with pytest.raises(ValueError, match="max_queue_depth"):
            spec.validate()

    def test_unknown_daemon_key_rejected(self):
        data = tiny_spec().to_dict()
        data["daemon"]["nope"] = 1
        with pytest.raises(ValueError, match="nope"):
            ExperimentSpec.from_dict(data)


class TestDeployment:
    def test_deploy_returns_delegating_handle(self):
        from repro.api import Deployment

        pipeline = Pipeline(tiny_spec())
        deployment = pipeline.deploy()
        assert isinstance(deployment, Deployment)
        assert deployment.server is pipeline.server
        assert pipeline.deployment is deployment
        # Attribute access and the serving calls behave exactly like the
        # raw OnlineServer the handle wraps.
        assert deployment.num_shards == pipeline.server.num_shards
        assert len(deployment.cache) > 0
        direct = pipeline.server.serve_batch([(0, 0), (1, 3)], k=3)
        via_handle = deployment.serve_batch([(0, 0), (1, 3)], k=3)
        for one, two in zip(direct, via_handle):
            np.testing.assert_array_equal(one.item_ids, two.item_ids)
        single = deployment.serve(0, 0, k=3)
        assert len(single.item_ids) == 3
        deployment.close()   # no daemons started: a no-op

    def test_deployment_daemon_round_trip_and_drain(self):
        from repro.serving import DaemonClient

        spec = tiny_spec()
        spec.daemon = DaemonSpec(max_batch_size=4, max_wait_ms=5.0,
                                 max_queue_depth=16)
        with Pipeline(spec) as pipeline:
            deployment = pipeline.deploy()
            expected = deployment.serve_batch([(1, 2)], k=3)[0]
            daemon = deployment.daemon()
            assert (daemon.host, daemon.port) != (None, None)
            with DaemonClient(daemon.host, daemon.port) as client:
                response = client.serve(1, 2, k=3)
            assert response["ok"] is True
            np.testing.assert_array_equal(response["item_ids"],
                                          expected.item_ids[:3])
        # Pipeline.close() drained the deployment's daemon.
        assert daemon._thread is None
