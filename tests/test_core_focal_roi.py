"""Tests for focal selection, the learned focal encoder and ROI construction."""

import numpy as np
import pytest

from repro.core import FocalPoints, FocalSelector, ROIBuilder, ZoomerConfig
from repro.core.focal import LearnedFocalEncoder
from repro.graph.schema import NodeType
from repro.ndarray.tensor import Tensor


class TestZoomerConfig:
    def test_defaults_valid(self):
        ZoomerConfig().validate()

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ZoomerConfig(embedding_dim=0).validate()
        with pytest.raises(ValueError):
            ZoomerConfig(fanouts=()).validate()
        with pytest.raises(ValueError):
            ZoomerConfig(roi_downscale=0.0).validate()
        with pytest.raises(ValueError):
            ZoomerConfig(relevance_metric="euclid").validate()
        with pytest.raises(ValueError):
            ZoomerConfig(optimizer="rmsprop").validate()

    def test_training_knob_positivity(self):
        with pytest.raises(ValueError):
            ZoomerConfig(batch_size=0).validate()
        with pytest.raises(ValueError):
            ZoomerConfig(epochs=0).validate()
        with pytest.raises(ValueError):
            ZoomerConfig(focal_loss_gamma=0.0).validate()
        with pytest.raises(ValueError):
            ZoomerConfig(focal_loss_gamma=-1.0).validate()
        with pytest.raises(ValueError):
            ZoomerConfig(regularization_weight=-1e-6).validate()
        with pytest.raises(ValueError):
            ZoomerConfig(serving_neighbor_cache=0).validate()
        # Boundary cases that must stay valid.
        ZoomerConfig(regularization_weight=0.0).validate()
        ZoomerConfig(batch_size=1, epochs=1, focal_loss_gamma=0.5).validate()

    def test_effective_fanouts_downscale(self):
        config = ZoomerConfig(fanouts=(10, 10), roi_downscale=0.1)
        assert config.effective_fanouts() == (1, 1)
        assert ZoomerConfig(fanouts=(10, 5)).effective_fanouts() == (10, 5)

    def test_ablation_names(self):
        assert ZoomerConfig().ablation_name() == "Zoomer"
        assert ZoomerConfig(use_semantic_attention=False).ablation_name() == \
            "Zoomer-FE"
        assert ZoomerConfig(use_edge_attention=False).ablation_name() == \
            "Zoomer-FS"
        assert ZoomerConfig(use_feature_attention=False).ablation_name() == \
            "Zoomer-ES"
        assert ZoomerConfig(use_feature_attention=False, use_edge_attention=False,
                            use_semantic_attention=False).ablation_name() == "GCN"


class TestFocalSelector:
    def test_select_and_dict(self):
        selector = FocalSelector()
        focal = selector.select(3, 7)
        assert focal == FocalPoints(3, 7)
        assert focal.as_dict() == {NodeType.USER: 3, NodeType.QUERY: 7}

    def test_focal_vector_is_sum_of_features(self, tiny_graph):
        selector = FocalSelector()
        focal = selector.select(0, 1)
        vector = selector.focal_vector(tiny_graph, focal)
        expected = (tiny_graph.node_feature(NodeType.USER, 0)
                    + tiny_graph.node_feature(NodeType.QUERY, 1))
        np.testing.assert_allclose(vector, expected)

    def test_focal_vectors_batch(self, tiny_graph):
        selector = FocalSelector()
        vectors = selector.focal_vectors(tiny_graph, [0, 1], [1, 2])
        assert vectors.shape == (2, tiny_graph.schema.feature_dims[NodeType.USER])


class TestLearnedFocalEncoder:
    def test_sums_space_mapped_embeddings(self):
        encoder = LearnedFocalEncoder(embedding_dim=4, hidden_dim=6,
                                      rng=np.random.default_rng(0))
        user = Tensor(np.ones((1, 4)))
        query = Tensor(np.ones((1, 4)) * 2)
        out = encoder({NodeType.USER: user, NodeType.QUERY: query})
        assert out.shape == (1, 6)
        # Must differ from mapping only one focal point.
        only_user = encoder({NodeType.USER: user})
        assert not np.allclose(out.numpy(), only_user.numpy())

    def test_missing_all_focals_rejected(self):
        encoder = LearnedFocalEncoder(4, 4)
        with pytest.raises(ValueError):
            encoder({})

    def test_gradients_flow_to_mappers(self):
        encoder = LearnedFocalEncoder(3, 3, rng=np.random.default_rng(1))
        out = encoder({NodeType.USER: Tensor(np.ones((1, 3)), requires_grad=True),
                       NodeType.QUERY: Tensor(np.ones((1, 3)))})
        out.sum().backward()
        assert all(p.grad is not None for p in encoder.parameters())


class TestROIBuilder:
    def test_build_contains_both_ego_trees(self, tiny_graph, zoomer_config):
        builder = ROIBuilder(zoomer_config)
        roi = builder.build(tiny_graph, user_id=0, query_id=1)
        assert set(roi.ego_trees) == {NodeType.USER, NodeType.QUERY}
        assert roi.tree(NodeType.USER).node_id == 0
        assert roi.tree(NodeType.QUERY).node_id == 1
        assert roi.num_nodes() >= 2
        assert roi.num_edges() >= 0

    def test_fanout_limits_respected(self, tiny_graph, zoomer_config):
        builder = ROIBuilder(zoomer_config)
        roi = builder.build(tiny_graph, 0, 0, fanouts=(2, 1))
        for tree in roi.ego_trees.values():
            assert len(tree.children) <= 2
            for _, child, _ in tree.children:
                assert len(child.children) <= 1

    def test_downscale_reduces_roi_size(self, tiny_graph):
        full = ROIBuilder(ZoomerConfig(fanouts=(6, 3), roi_downscale=1.0,
                                       embedding_dim=8))
        small = ROIBuilder(ZoomerConfig(fanouts=(6, 3), roi_downscale=0.34,
                                        embedding_dim=8))
        user = 0
        roi_full = full.build(tiny_graph, user, 0)
        roi_small = small.build(tiny_graph, user, 0)
        assert roi_small.num_nodes() <= roi_full.num_nodes()

    def test_batch_build(self, tiny_graph, zoomer_config):
        builder = ROIBuilder(zoomer_config)
        rois = builder.build_batch(tiny_graph, [0, 1], [0, 1])
        assert len(rois) == 2
        with pytest.raises(ValueError):
            builder.build_batch(tiny_graph, [0], [0, 1])

    def test_coverage_ratio_in_unit_interval(self, tiny_graph, zoomer_config):
        builder = ROIBuilder(zoomer_config)
        roi = builder.build(tiny_graph, 0, 0)
        ratio = builder.coverage_ratio(tiny_graph, roi)
        assert 0.0 <= ratio <= 1.0

    def test_roi_focal_vector_matches_selector(self, tiny_graph, zoomer_config):
        builder = ROIBuilder(zoomer_config)
        roi = builder.build(tiny_graph, 2, 3)
        expected = (tiny_graph.node_feature(NodeType.USER, 2)
                    + tiny_graph.node_feature(NodeType.QUERY, 3))
        np.testing.assert_allclose(roi.focal_vector, expected)

    def test_movielens_roles(self, tiny_movielens):
        """ROI construction also works when 'query' role is played by tags."""
        selector = FocalSelector(user_type=NodeType.USER, query_type=NodeType.TAG)
        builder = ROIBuilder(ZoomerConfig(embedding_dim=8, fanouts=(3, 2)),
                             selector=selector)
        roi = builder.build(tiny_movielens.graph, 0, 0)
        assert set(roi.ego_trees) == {NodeType.USER, NodeType.TAG}
