"""Tests for the serving stack: cache, ANN, inverted index, latency, server."""

import numpy as np
import pytest

from repro.baselines import STAMPModel
from repro.graph.schema import NodeType
from repro.serving import (
    ExactIndex,
    IVFIndex,
    InvertedIndex,
    LatencySimulator,
    NeighborCache,
    OnlineServer,
)
from repro.serving.inverted_index import ItemMetadata
from repro.serving.latency import LatencyBreakdown


class TestNeighborCache:
    def test_put_get_hit_miss(self):
        cache = NeighborCache(capacity=3)
        assert cache.get("user", 0) is None
        cache.put("user", 0, [("item", 1, 0.5), ("item", 2, 0.3),
                              ("item", 3, 0.1), ("item", 4, 0.9)])
        entry = cache.get("user", 0)
        assert len(entry) == 3          # capacity bound
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert 0.0 < cache.hit_rate() < 1.0

    def test_eviction_of_oldest_node(self):
        cache = NeighborCache(capacity=2, max_nodes=2)
        cache.put("user", 0, [("item", 1, 1.0)])
        cache.put("user", 1, [("item", 2, 1.0)])
        cache.put("user", 2, [("item", 3, 1.0)])
        assert len(cache) == 2
        assert cache.get("user", 0) is None
        assert cache.stats.evictions == 1

    def test_update_visit_keeps_most_recent_first(self):
        cache = NeighborCache(capacity=2)
        cache.put("query", 5, [("item", 1, 1.0), ("item", 2, 1.0)])
        cache.update_visit("query", 5, ("item", 9, 1.0))
        entry = cache.get("query", 5)
        assert entry[0] == ("item", 9, 1.0)
        assert len(entry) == 2

    def test_warm_from_graph(self, tiny_graph):
        cache = NeighborCache(capacity=5)
        cache.warm(tiny_graph, NodeType.USER, [0, 1, 2])
        assert len(cache) == 3
        entry = cache.get(NodeType.USER, 0)
        assert entry is not None and len(entry) <= 5
        if len(entry) >= 2:
            assert entry[0][2] >= entry[1][2]   # sorted by weight

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborCache(capacity=0)
        with pytest.raises(ValueError):
            NeighborCache(max_nodes=0)


class TestANN:
    def _embeddings(self, n=100, d=8):
        return np.random.default_rng(0).normal(size=(n, d))

    def test_exact_index_top1_is_self(self):
        embeddings = self._embeddings()
        index = ExactIndex(embeddings)
        # Query with a vector equal to a stored embedding scaled up: the top
        # result by inner product need not be itself, but searching with a
        # one-hot of the largest-norm row must return a valid id and scores
        # sorted descending.
        ids, scores = index.search(embeddings[3], k=5)
        assert ids.shape == (5,)
        assert np.all(np.diff(scores) <= 1e-12)

    def test_ivf_recall_reasonable(self):
        embeddings = self._embeddings(200, 8)
        index = IVFIndex(num_cells=8, nprobe=4, seed=0).build(embeddings)
        queries = embeddings[:10]
        recall = index.recall_at_k(queries, k=10)
        assert recall > 0.5

    def test_ivf_more_probes_no_worse(self):
        embeddings = self._embeddings(200, 8)
        index = IVFIndex(num_cells=10, nprobe=1, seed=0).build(embeddings)
        queries = embeddings[:10]
        low = index.recall_at_k(queries, k=10)
        index.nprobe = 10
        high = index.recall_at_k(queries, k=10)
        assert high >= low

    def test_ivf_requires_build(self):
        with pytest.raises(RuntimeError):
            IVFIndex().search(np.zeros(4), k=1)

    def test_ivf_custom_ids(self):
        embeddings = self._embeddings(20, 4)
        ids = np.arange(100, 120)
        index = IVFIndex(num_cells=4, nprobe=4).build(embeddings, ids)
        found, _ = index.search(embeddings[0], k=3)
        assert set(found) <= set(ids)

    def test_validation(self):
        with pytest.raises(ValueError):
            IVFIndex(num_cells=0)
        with pytest.raises(ValueError):
            IVFIndex().build(np.zeros((0, 4)))
        with pytest.raises(ValueError):
            ExactIndex(np.zeros(3))

    def test_exact_k_larger_than_corpus_returns_all(self):
        embeddings = self._embeddings(7, 4)
        ids, scores = ExactIndex(embeddings).search(embeddings[0], k=100)
        assert ids.shape == (7,)
        assert np.all(np.diff(scores) <= 1e-12)

    def test_ivf_k_larger_than_probed_candidates(self):
        """A single-query search never returns padding, only real hits."""
        embeddings = self._embeddings(50, 4)
        index = IVFIndex(num_cells=10, nprobe=1, seed=0).build(embeddings)
        ids, scores = index.search(embeddings[0], k=50)
        assert 0 < ids.size <= 50
        assert (ids >= 0).all()
        assert np.isfinite(scores).all()


class TestInvertedIndex:
    def test_posting_lookup_and_order(self):
        index = InvertedIndex(posting_length=3)
        index.add_posting(7, [(1, 0.2), (2, 0.9), (3, 0.5), (4, 0.1)])
        posting = index.lookup(7)
        assert [item for item, _ in posting] == [2, 3, 1]
        assert index.lookup(7, k=1) == [(2, 0.9)]
        assert index.lookup(99) == []
        assert index.misses == 1 and index.lookups == 3

    def test_metadata_layer(self):
        index = InvertedIndex()
        index.add_metadata(ItemMetadata(item_id=4, category=2, price=9.5))
        assert index.metadata(4).category == 2
        assert index.metadata(5) is None

    def test_build_from_embeddings_and_coverage(self):
        rng = np.random.default_rng(0)
        index = InvertedIndex(posting_length=5)
        index.build_from_embeddings([0, 1], rng.normal(size=(2, 4)),
                                    rng.normal(size=(20, 4)))
        assert len(index) == 2
        assert len(index.lookup(0)) == 5
        assert index.coverage([0, 1, 2]) == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            InvertedIndex(posting_length=0)


class TestLatencySimulator:
    def test_response_time_increases_with_qps(self):
        simulator = LatencySimulator(num_servers=32, service_time_ms=2.5)
        sweep = simulator.sweep([1000, 5000, 10000])
        times = [row["response_ms"] for row in sweep]
        assert times == sorted(times)
        assert times[0] >= 2.5

    def test_sublinear_growth_under_capacity(self):
        """10x the QPS should cost much less than 10x the response time."""
        simulator = LatencySimulator(num_servers=64, service_time_ms=2.5)
        low = simulator.expected_response_ms(1000)
        high = simulator.expected_response_ms(10000)
        assert high / low < 2.0

    def test_monotone_across_saturation_boundary(self):
        """Regression: the curve must not dip where Erlang C hands over to
        the saturation extension (hypothesis found servers=6,
        service=1.40625 ms dipping between 4199 and 4267 QPS)."""
        simulator = LatencySimulator(num_servers=6, service_time_ms=1.40625)
        qps_values = np.linspace(3500.0, 6000.0, 200)
        times = [simulator.expected_response_ms(q) for q in qps_values]
        assert all(b >= a - 1e-9 for a, b in zip(times, times[1:]))

    def test_saturation_flagged_with_large_penalty(self):
        simulator = LatencySimulator(num_servers=1, service_time_ms=10.0)
        assert simulator.utilisation(1000) > 1.0
        assert simulator.expected_response_ms(1000) > 20.0

    def test_servers_needed(self):
        simulator = LatencySimulator(num_servers=1, service_time_ms=2.0)
        needed = simulator.servers_needed(qps=10_000, target_utilisation=0.6)
        assert needed >= 10_000 / (500 * 0.6) - 1

    def test_calibration_and_validation(self):
        simulator = LatencySimulator()
        simulator.calibrate_service_time(1.5)
        assert simulator.service_time_ms == 1.5
        with pytest.raises(ValueError):
            simulator.calibrate_service_time(0.0)
        with pytest.raises(ValueError):
            LatencySimulator(num_servers=0)
        with pytest.raises(ValueError):
            simulator.servers_needed(100, target_utilisation=1.5)

    def test_latency_breakdown_totals(self):
        breakdown = LatencyBreakdown(cache_ms=0.5, attention_ms=1.0, ann_ms=0.3,
                                     queueing_ms=0.2)
        assert breakdown.service_ms == pytest.approx(1.8)
        assert breakdown.total_ms == pytest.approx(2.0)


class TestOnlineServer:
    @pytest.fixture(scope="class")
    def server(self, tiny_graph):
        model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        server = OnlineServer(model, cache_capacity=5, ann_cells=4, ann_nprobe=2)
        server.warm_caches(range(5), range(5))
        server.build_inverted_index(range(5))
        return server

    def test_serve_returns_items_and_latency(self, server):
        result = server.serve(0, 1, k=5)
        assert result.item_ids.shape[0] <= 5
        assert result.latency.total_ms >= 0
        assert result.from_inverted_index   # query 1 has a posting list

    def test_serve_falls_back_to_ann(self, server):
        result = server.serve(0, 20, k=5)   # query 20 has no posting list
        assert not result.from_inverted_index
        assert result.item_ids.shape[0] <= 5

    def test_qps_sweep_shape(self, server):
        rows = server.qps_sweep([1000, 2000], [(0, 1), (1, 2)], k=5)
        assert len(rows) == 2
        assert rows[0]["response_ms"] > 0

    def test_measure_service_time_requires_requests(self, server):
        with pytest.raises(ValueError):
            server.measure_service_time([])
