"""Tests for the Zoomer twin-tower model and its ablation variants."""

import numpy as np
import pytest

from repro.core import ZoomerConfig, ZoomerModel, build_ablation_variant
from repro.core.ablation import ABLATION_VARIANTS, ablation_config
from repro.graph.schema import NodeType
from repro.ndarray import functional as F


class TestZoomerModel:
    def test_forward_shape_and_range(self, zoomer_model, tiny_dataset):
        records = tiny_dataset.impressions[:6]
        probs = zoomer_model.forward_batch(
            np.array([r.user_id for r in records]),
            np.array([r.query_id for r in records]),
            np.array([r.item_id for r in records]))
        values = probs.numpy()
        assert values.shape == (6,)
        assert np.all((values >= 0) & (values <= 1))

    def test_backward_reaches_all_parameters(self, tiny_graph, zoomer_config,
                                             tiny_dataset):
        model = ZoomerModel(tiny_graph, zoomer_config)
        records = tiny_dataset.impressions[:8]
        probs = model.forward_batch(
            np.array([r.user_id for r in records]),
            np.array([r.query_id for r in records]),
            np.array([r.item_id for r in records]))
        loss = F.focal_cross_entropy(probs, np.array([r.label for r in records]))
        loss.backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert not missing, f"parameters without gradient: {missing}"

    def test_roi_cache(self, zoomer_model):
        zoomer_model.clear_roi_cache()
        roi_first = zoomer_model.roi_for(0, 1)
        roi_second = zoomer_model.roi_for(0, 1)
        assert roi_first is roi_second
        zoomer_model.clear_roi_cache()
        assert zoomer_model.roi_for(0, 1) is not roi_first

    def test_request_and_item_embeddings(self, zoomer_model, zoomer_config):
        request = zoomer_model.request_embedding(0, 1)
        item = zoomer_model.item_embedding(0)
        assert request.shape == (zoomer_config.embedding_dim,)
        assert item.shape == (zoomer_config.embedding_dim,)
        all_items = zoomer_model.item_embeddings()
        assert all_items.shape[0] == zoomer_model.graph.num_nodes[NodeType.ITEM]

    def test_score_items(self, zoomer_model):
        scores = zoomer_model.score_items(0, 1, [0, 1, 2, 3])
        assert scores.shape == (4,)

    def test_coupling_coefficients_distribution(self, zoomer_model):
        weights = zoomer_model.coupling_coefficients(0, 1, [0, 1, 2, 3, 4])
        assert weights.shape == (5,)
        assert weights.sum() == pytest.approx(1.0)
        different = zoomer_model.coupling_coefficients(0, 2, [0, 1, 2, 3, 4])
        assert not np.allclose(weights, different)

    def test_works_on_movielens_roles(self, tiny_movielens):
        model = ZoomerModel(tiny_movielens.graph,
                            ZoomerConfig(embedding_dim=8, fanouts=(3, 2)))
        assert model.query_type == NodeType.TAG
        assert model.item_type == NodeType.MOVIE
        records = tiny_movielens.examples[:4]
        probs = model.forward_batch(
            np.array([r.user_id for r in records]),
            np.array([r.query_id for r in records]),
            np.array([r.item_id for r in records]))
        assert probs.shape == (4,)

    def test_name_reflects_ablation(self, tiny_graph):
        model = ZoomerModel(tiny_graph, ZoomerConfig(
            embedding_dim=8, fanouts=(2,), use_edge_attention=False))
        assert model.name == "Zoomer-FS"


class TestAblationVariants:
    def test_registry_complete(self):
        assert set(ABLATION_VARIANTS) == {"GCN", "Zoomer-FE", "Zoomer-FS",
                                          "Zoomer-ES", "Zoomer"}

    def test_ablation_config_flags(self):
        config = ablation_config("Zoomer-ES",
                                 ZoomerConfig(embedding_dim=8, fanouts=(2,)))
        assert not config.use_feature_attention
        assert config.use_edge_attention and config.use_semantic_attention
        assert config.embedding_dim == 8

    def test_unknown_variant_rejected(self, tiny_graph):
        with pytest.raises(KeyError):
            build_ablation_variant(tiny_graph, "Zoomer-XY")

    @pytest.mark.parametrize("variant", sorted(ABLATION_VARIANTS))
    def test_variants_run_forward(self, tiny_graph, tiny_dataset, variant):
        model = build_ablation_variant(
            tiny_graph, variant,
            ZoomerConfig(embedding_dim=8, fanouts=(3, 2), seed=1))
        assert model.name == variant
        records = tiny_dataset.impressions[:4]
        probs = model.forward_batch(
            np.array([r.user_id for r in records]),
            np.array([r.query_id for r in records]),
            np.array([r.item_id for r in records]))
        assert probs.shape == (4,)

    def test_variants_differ_in_output(self, tiny_graph, tiny_dataset):
        """Disabling attention levels must actually change the predictions."""
        records = tiny_dataset.impressions[:4]
        users = np.array([r.user_id for r in records])
        queries = np.array([r.query_id for r in records])
        items = np.array([r.item_id for r in records])
        base = ZoomerConfig(embedding_dim=8, fanouts=(3, 2), seed=3)
        full = build_ablation_variant(tiny_graph, "Zoomer", base)
        gcn = build_ablation_variant(tiny_graph, "GCN", base)
        out_full = full.forward_batch(users, queries, items).numpy()
        out_gcn = gcn.forward_batch(users, queries, items).numpy()
        assert not np.allclose(out_full, out_gcn)
