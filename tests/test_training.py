"""Tests for metrics, the dataloader and the trainer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import STAMPModel
from repro.core import ZoomerModel
from repro.training import (
    ImpressionDataLoader,
    MetricReport,
    Trainer,
    TrainingConfig,
    auc_score,
    hit_rate_at_k,
    mean_absolute_error,
    root_mean_squared_error,
)


class TestAUC:
    def test_perfect_ranking(self):
        assert auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_ties(self):
        assert auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_returns_half(self):
        assert auc_score([1, 1], [0.3, 0.7]) == 0.5
        assert auc_score([0, 0], [0.3, 0.7]) == 0.5

    def test_matches_manual_pairwise_computation(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=50)
        scores = rng.random(50)
        positives = scores[labels == 1]
        negatives = scores[labels == 0]
        pairs = [(p > n) + 0.5 * (p == n) for p in positives for n in negatives]
        expected = np.mean(pairs)
        assert auc_score(labels, scores) == pytest.approx(expected)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            auc_score([1, 0], [0.5])

    @given(st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1)),
                    min_size=2, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_auc_bounded(self, pairs):
        labels = [p[0] for p in pairs]
        scores = [p[1] for p in pairs]
        value = auc_score(labels, scores)
        assert 0.0 <= value <= 1.0


class TestOtherMetrics:
    def test_mae_rmse(self):
        labels = [1.0, 0.0, 1.0]
        scores = [0.5, 0.5, 1.0]
        assert mean_absolute_error(labels, scores) == pytest.approx(1.0 / 3)
        assert root_mean_squared_error(labels, scores) == pytest.approx(
            np.sqrt((0.25 + 0.25 + 0) / 3))
        assert mean_absolute_error([], []) == 0.0
        assert root_mean_squared_error([], []) == 0.0

    def test_hit_rate(self):
        ranked = [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
        clicked = [2, 6, 1]
        assert hit_rate_at_k(ranked, clicked, 2) == pytest.approx(1 / 3)
        assert hit_rate_at_k(ranked, clicked, 3) == pytest.approx(2 / 3)
        assert hit_rate_at_k([], [], 5) == 0.0
        with pytest.raises(ValueError):
            hit_rate_at_k(ranked, clicked, 0)
        with pytest.raises(ValueError):
            hit_rate_at_k(ranked, clicked[:2], 1)

    def test_metric_report_rows(self):
        report = MetricReport("m", auc=0.75, hit_rates={100: 0.2, 200: 0.4})
        row = report.as_row()
        assert row["model"] == "m"
        assert row["hitrate@100"] == 0.2


class TestDataLoader:
    def test_batch_sizes_and_count(self, tiny_splits):
        train, _ = tiny_splits
        loader = ImpressionDataLoader(train, batch_size=32)
        batches = list(loader.epoch())
        assert len(loader) == len(batches)
        assert sum(len(b) for b in batches) == len(train)
        assert all(len(b) <= 32 for b in batches)

    def test_shuffling_differs_across_epochs(self, tiny_splits):
        train, _ = tiny_splits
        loader = ImpressionDataLoader(train, batch_size=16, shuffle=True, seed=0)
        first = next(iter(loader.epoch())).item_ids.tolist()
        second = next(iter(loader.epoch())).item_ids.tolist()
        assert first != second

    def test_no_shuffle_preserves_order(self, tiny_splits):
        train, _ = tiny_splits
        loader = ImpressionDataLoader(train, batch_size=8, shuffle=False)
        batch = next(iter(loader.epoch()))
        expected = [e.item_id for e in train[:8]]
        assert batch.item_ids.tolist() == expected

    def test_extra_negatives(self, tiny_splits):
        train, _ = tiny_splits
        loader = ImpressionDataLoader(train, batch_size=16, extra_negatives=1,
                                      num_items=60)
        batch = next(iter(loader.epoch()))
        positives = int((batch.labels[:16] > 0.5).sum())
        assert len(batch) == 16 + positives

    def test_validation(self, tiny_splits):
        train, _ = tiny_splits
        with pytest.raises(ValueError):
            ImpressionDataLoader(train, batch_size=0)
        with pytest.raises(ValueError):
            ImpressionDataLoader(train, extra_negatives=1)

    def test_empty_loader(self):
        loader = ImpressionDataLoader([], batch_size=4)
        assert len(loader) == 0
        assert list(loader.epoch()) == []


class TestTrainer:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(loss="mse").validate()
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="lbfgs").validate()
        with pytest.raises(ValueError):
            TrainingConfig(focal_gamma=0.0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(regularization_weight=-1.0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(eval_batch_size=0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(max_batches_per_epoch=0).validate()
        TrainingConfig(max_batches_per_epoch=None).validate()

    def test_config_dict_round_trip(self):
        config = TrainingConfig(epochs=2, batch_size=32, learning_rate=0.01,
                                loss="bce", max_batches_per_epoch=5, seed=7)
        assert TrainingConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError):
            TrainingConfig.from_dict({"epoch": 2})

    def test_loss_decreases_on_fast_model(self, tiny_graph, tiny_splits):
        train, _ = tiny_splits
        model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=3, batch_size=64,
                                                learning_rate=0.05, loss="bce"))
        result = trainer.train(train[:300])
        assert result.iterations > 0
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_evaluate_returns_sane_metrics(self, tiny_graph, tiny_splits):
        _, test = tiny_splits
        model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=32))
        report = trainer.evaluate(test[:80])
        assert 0.0 <= report.auc <= 1.0
        assert report.mae >= 0 and report.rmse >= 0

    def test_zoomer_single_step_updates_parameters(self, tiny_graph, tiny_splits,
                                                   zoomer_config):
        train, _ = tiny_splits
        model = ZoomerModel(tiny_graph, zoomer_config)
        trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=8,
                                                max_batches_per_epoch=1,
                                                learning_rate=0.05))
        before = model.encoder.parameters()[0].numpy().copy()
        result = trainer.train(train[:16])
        after = model.encoder.parameters()[0].numpy()
        assert result.iterations == 1
        assert not np.allclose(before, after)

    def test_hit_rate_evaluation(self, tiny_graph, tiny_splits):
        train, test = tiny_splits
        model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=64))
        trainer.train(train[:200])
        rates = trainer.evaluate_hit_rate(test, ks=(5, 20), candidate_pool=40,
                                          max_requests=8)
        assert set(rates) == {5, 20}
        assert all(0.0 <= v <= 1.0 for v in rates.values())
        assert rates[20] >= rates[5]

    def test_target_auc_early_stop_fields(self, tiny_graph, tiny_splits):
        train, test = tiny_splits
        model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=2, batch_size=64,
                                                max_batches_per_epoch=3))
        result = trainer.train(train[:200], test[:80], target_auc=0.0)
        # target 0.0 is reached immediately after the first epoch evaluation
        assert result.reached_target_auc is True
        assert result.time_to_target is not None
        assert len(result.epoch_aucs) >= 1

    def test_max_batches_cap(self, tiny_graph, tiny_splits):
        train, _ = tiny_splits
        model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=2, batch_size=16,
                                                max_batches_per_epoch=2))
        result = trainer.train(train[:300])
        assert result.iterations == 4
