"""The README quickstart must execute against the real API, verbatim.

Extracts every fenced ``python`` block from ``README.md`` and executes them
in order in one shared namespace — the documented entry point can never
drift from the actual :mod:`repro.api` surface without failing CI.
"""

import pathlib
import re

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"

_PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks():
    return _PYTHON_BLOCK.findall(README.read_text(encoding="utf-8"))


def test_readme_exists_with_quickstart():
    assert README.exists(), "README.md is missing"
    blocks = _python_blocks()
    assert blocks, "README.md has no ```python quickstart block"
    assert "Pipeline" in blocks[0]


def test_readme_quickstart_executes(capsys):
    namespace: dict = {}
    for block in _python_blocks():
        exec(compile(block, str(README), "exec"), namespace)  # noqa: S102
    printed = capsys.readouterr().out
    assert printed.strip(), "quickstart printed nothing"
    # The quickstart ends by serving retrieval results.
    assert "server" in namespace and "results" in namespace
    assert all(result.item_ids.size for result in namespace["results"])
