"""Tests for the shared model encoders (node slots, twin-tower head)."""

import numpy as np
import pytest

from repro.graph.schema import NodeType
from repro.models import HeteroNodeEncoder, TwinTowerHead
from repro.models.base import RetrievalModel
from repro.ndarray.tensor import Tensor


class TestHeteroNodeEncoder:
    def test_slots_shape(self, tiny_graph):
        encoder = HeteroNodeEncoder(tiny_graph, embedding_dim=8,
                                    rng=np.random.default_rng(0))
        slots = encoder.slots(NodeType.ITEM, [0, 1, 2])
        assert slots.shape == (3, HeteroNodeEncoder.NUM_SLOTS, 8)

    def test_mean_vectors_are_slot_means(self, tiny_graph):
        encoder = HeteroNodeEncoder(tiny_graph, embedding_dim=8,
                                    rng=np.random.default_rng(0))
        slots = encoder.slots(NodeType.USER, [0, 1]).numpy()
        means = encoder.mean_vectors(NodeType.USER, [0, 1]).numpy()
        np.testing.assert_allclose(means, slots.mean(axis=1), atol=1e-12)

    def test_same_id_same_slots(self, tiny_graph):
        encoder = HeteroNodeEncoder(tiny_graph, embedding_dim=8,
                                    rng=np.random.default_rng(0))
        first = encoder.slots(NodeType.QUERY, [3]).numpy()
        second = encoder.slots(NodeType.QUERY, [3]).numpy()
        np.testing.assert_allclose(first, second)

    def test_different_nodes_have_different_slots(self, tiny_graph):
        encoder = HeteroNodeEncoder(tiny_graph, embedding_dim=8,
                                    rng=np.random.default_rng(0))
        slots = encoder.slots(NodeType.ITEM, [0, 1]).numpy()
        assert not np.allclose(slots[0], slots[1])

    def test_type_embedding_shared_within_type(self, tiny_graph):
        encoder = HeteroNodeEncoder(tiny_graph, embedding_dim=8,
                                    rng=np.random.default_rng(0))
        slots = encoder.slots(NodeType.ITEM, [0, 5]).numpy()
        # Slot index 2 is the type embedding: identical across nodes of a type.
        np.testing.assert_allclose(slots[0, 2], slots[1, 2])

    def test_gradients_flow_through_slots(self, tiny_graph):
        encoder = HeteroNodeEncoder(tiny_graph, embedding_dim=8,
                                    rng=np.random.default_rng(1))
        out = encoder.slots(NodeType.USER, [0, 1, 1])
        out.sum().backward()
        id_table = getattr(encoder, f"id_embedding_{NodeType.USER}")
        assert id_table.weight.grad is not None
        # Node 1 appears twice so its gradient row is twice node 0's.
        np.testing.assert_allclose(id_table.weight.grad[1],
                                   2 * id_table.weight.grad[0])

    def test_registered_parameters_cover_all_types(self, tiny_graph):
        encoder = HeteroNodeEncoder(tiny_graph, embedding_dim=4)
        names = [name for name, _ in encoder.named_parameters()]
        for node_type in tiny_graph.schema.node_types:
            assert any(node_type in name for name in names)


class TestTwinTowerHead:
    def test_score_is_dot_of_towers(self):
        rng = np.random.default_rng(0)
        head = TwinTowerHead(request_dim=6, item_dim=4, hidden=(8,),
                             output_dim=5, rng=rng)
        request_input = Tensor(rng.normal(size=(3, 6)))
        item_input = Tensor(rng.normal(size=(3, 4)))
        request_out = head.request(request_input).numpy()
        item_out = head.item(item_input).numpy()
        scores = head.score(request_input, item_input).numpy()
        np.testing.assert_allclose(scores, (request_out * item_out).sum(axis=-1),
                                   atol=1e-9)

    def test_towers_have_separate_parameters(self):
        head = TwinTowerHead(4, 4, (8,), 4)
        request_params = {id(p) for p in head.request_tower.parameters()}
        item_params = {id(p) for p in head.item_tower.parameters()}
        assert request_params.isdisjoint(item_params)

    def test_output_dim(self):
        head = TwinTowerHead(4, 3, (6,), 7)
        assert head.request(Tensor(np.ones((2, 4)))).shape == (2, 7)
        assert head.item(Tensor(np.ones((2, 3)))).shape == (2, 7)


class TestRetrievalModelBase:
    def test_forward_batch_abstract(self, tiny_graph):
        model = RetrievalModel(tiny_graph)
        with pytest.raises(NotImplementedError):
            model.forward_batch(np.zeros(1, dtype=int), np.zeros(1, dtype=int),
                                np.zeros(1, dtype=int))

    def test_item_and_query_node_types(self, tiny_graph, tiny_movielens):
        assert RetrievalModel(tiny_graph).item_node_type() == NodeType.ITEM
        assert RetrievalModel(tiny_graph).query_node_type() == NodeType.QUERY
        movie_model = RetrievalModel(tiny_movielens.graph)
        assert movie_model.item_node_type() == NodeType.MOVIE
        assert movie_model.query_node_type() == NodeType.TAG

    def test_score_items_uses_embeddings(self, tiny_graph):
        class Constant(RetrievalModel):
            def request_embedding(self, user_id, query_id):
                return np.array([1.0, 0.0])

            def item_embedding(self, item_id):
                return np.array([float(item_id), 0.0])

        model = Constant(tiny_graph)
        scores = model.score_items(0, 0, [0, 1, 2])
        np.testing.assert_allclose(scores, [0.0, 1.0, 2.0])
        embeddings = model.item_embeddings([1, 3])
        assert embeddings.shape == (2, 2)
