"""Tests for the graph engine: alias table, MinHash, schema, HeteroGraph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    AliasTable,
    GraphSchema,
    HeteroGraph,
    MinHasher,
    jaccard_similarity,
)
from repro.graph.schema import (
    EdgeType,
    NodeType,
    RelationSpec,
    movielens_schema,
    taobao_schema,
)


class TestAliasTable:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            AliasTable([])
        with pytest.raises(ValueError):
            AliasTable([-1.0, 2.0])
        with pytest.raises(ValueError):
            AliasTable(np.ones((2, 2)))

    def test_zero_weights_fall_back_to_uniform(self):
        table = AliasTable([0.0, 0.0, 0.0])
        np.testing.assert_allclose(table.probabilities, np.ones(3) / 3)

    def test_sampling_matches_distribution(self):
        weights = np.array([1.0, 2.0, 7.0])
        table = AliasTable(weights)
        rng = np.random.default_rng(0)
        samples = table.sample(20_000, rng)
        counts = np.bincount(samples, minlength=3) / samples.size
        np.testing.assert_allclose(counts, weights / weights.sum(), atol=0.02)

    def test_sample_one_in_range(self):
        table = AliasTable([0.3, 0.7])
        for _ in range(20):
            assert table.sample_one(np.random.default_rng(1)) in (0, 1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            AliasTable([1.0]).sample(-1)

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_probabilities_always_normalised(self, weights):
        table = AliasTable(weights)
        assert table.probabilities.sum() == pytest.approx(1.0)
        assert np.all(table.probabilities >= 0)


class TestMinHash:
    def test_exact_jaccard(self):
        assert jaccard_similarity({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)
        assert jaccard_similarity(set(), set()) == 0.0
        assert jaccard_similarity({1}, {1}) == 1.0

    def test_signature_similarity_estimate(self):
        hasher = MinHasher(num_perm=256, num_bands=32)
        a = set(range(100))
        b = set(range(50, 150))
        estimate = hasher.estimate_similarity(hasher.signature(a),
                                              hasher.signature(b))
        assert estimate == pytest.approx(jaccard_similarity(a, b), abs=0.12)

    def test_identical_sets_give_identical_signatures(self):
        hasher = MinHasher(num_perm=64)
        np.testing.assert_array_equal(hasher.signature({1, 2, 3}),
                                      hasher.signature({3, 2, 1}))

    def test_candidate_pairs_finds_near_duplicates(self):
        hasher = MinHasher(num_perm=64, num_bands=16)
        corpora = {0: list(range(30)), 1: list(range(30)),
                   2: list(range(1000, 1030))}
        pairs = hasher.candidate_pairs({k: hasher.signature(v)
                                        for k, v in corpora.items()})
        assert (0, 1) in pairs

    def test_similarity_edges_threshold(self):
        hasher = MinHasher(num_perm=64, num_bands=16)
        edges = hasher.similarity_edges({0: list(range(20)),
                                         1: list(range(20)),
                                         2: list(range(500, 520))},
                                        threshold=0.5)
        keys = {(a, b) for a, b, _ in edges}
        assert (0, 1) in keys
        assert all(sim >= 0.5 for _, _, sim in edges)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            MinHasher(num_perm=10, num_bands=3)
        with pytest.raises(ValueError):
            MinHasher(num_perm=0)

    def test_mismatched_signature_lengths(self):
        hasher = MinHasher(num_perm=32, num_bands=8)
        with pytest.raises(ValueError):
            hasher.estimate_similarity(np.zeros(32, dtype=np.uint64),
                                       np.zeros(16, dtype=np.uint64))


class TestSchema:
    def test_taobao_schema_complete(self):
        schema = taobao_schema()
        assert set(schema.node_types) == {NodeType.USER, NodeType.QUERY,
                                          NodeType.ITEM}
        assert schema.relations_from(NodeType.USER)
        schema.validate()

    def test_movielens_schema(self):
        schema = movielens_schema()
        assert NodeType.MOVIE in schema.node_types
        assert NodeType.TAG in schema.node_types

    def test_duplicate_node_type_rejected(self):
        schema = GraphSchema()
        schema.add_node_type("a", 4)
        with pytest.raises(ValueError):
            schema.add_node_type("a", 4)

    def test_relation_requires_known_types(self):
        schema = GraphSchema().add_node_type("a", 4)
        with pytest.raises(KeyError):
            schema.add_relation("a", "e", "missing")

    def test_relation_spec_reverse(self):
        spec = RelationSpec("a", "e", "b")
        assert spec.reverse() == RelationSpec("b", "e", "a")

    def test_empty_schema_invalid(self):
        with pytest.raises(ValueError):
            GraphSchema().validate()


def _small_graph():
    schema = taobao_schema(feature_dim=4)
    graph = HeteroGraph(schema)
    graph.add_nodes(NodeType.USER, np.eye(4)[:3])
    graph.add_nodes(NodeType.QUERY, np.eye(4)[:2])
    graph.add_nodes(NodeType.ITEM, np.random.default_rng(0).normal(size=(5, 4)))
    spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
    graph.add_edges(spec, [0, 0, 1, 2], [0, 1, 2, 4], [1.0, 2.0, 1.0, 3.0],
                    symmetric=True)
    graph.add_edges(RelationSpec(NodeType.USER, EdgeType.SEARCH, NodeType.QUERY),
                    [0, 1], [0, 1], symmetric=True)
    return graph.finalize()


class TestHeteroGraph:
    def test_counts_and_summary(self):
        graph = _small_graph()
        assert graph.total_nodes == 10
        assert graph.total_edges == 12
        summary = graph.summary()
        assert summary["num_nodes"][NodeType.ITEM] == 5
        assert summary["memory_bytes"] > 0

    def test_neighbors_and_degree(self):
        graph = _small_graph()
        neighbors = graph.neighbors(NodeType.USER, 0)
        destinations = {spec.dst_type for spec, _, _ in neighbors}
        assert destinations == {NodeType.ITEM, NodeType.QUERY}
        assert graph.degree(NodeType.USER, 0) == 3

    def test_relation_neighbor_weights(self):
        graph = _small_graph()
        spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        ids, weights = graph.relation(spec).neighbors(0)
        assert set(ids.tolist()) == {0, 1}
        assert set(weights.tolist()) == {1.0, 2.0}

    def test_reverse_edges_present(self):
        graph = _small_graph()
        spec = RelationSpec(NodeType.ITEM, EdgeType.CLICK, NodeType.USER)
        ids, _ = graph.relation(spec).neighbors(4)
        assert 2 in ids.tolist()

    def test_sample_neighbors_limits_and_determinism(self):
        graph = _small_graph()
        spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        relation = graph.relation(spec)
        ids, _ = relation.sample_neighbors(0, k=1, rng=np.random.default_rng(0))
        assert ids.size == 1
        all_ids, _ = relation.sample_neighbors(0, k=10,
                                               rng=np.random.default_rng(0))
        assert all_ids.size == 2   # only two neighbors exist

    def test_feature_validation(self):
        schema = taobao_schema(feature_dim=4)
        graph = HeteroGraph(schema)
        with pytest.raises(ValueError):
            graph.add_nodes(NodeType.USER, np.ones((2, 3)))
        with pytest.raises(KeyError):
            graph.add_nodes("unknown", np.ones((2, 4)))

    def test_edge_validation(self):
        schema = taobao_schema(feature_dim=4)
        graph = HeteroGraph(schema)
        graph.add_nodes(NodeType.USER, np.ones((2, 4)))
        graph.add_nodes(NodeType.ITEM, np.ones((2, 4)))
        spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        with pytest.raises(IndexError):
            graph.add_edges(spec, [0], [5])
        with pytest.raises(ValueError):
            graph.add_edges(spec, [0], [0, 1])

    def test_queries_require_finalize(self):
        schema = taobao_schema(feature_dim=4)
        graph = HeteroGraph(schema)
        graph.add_nodes(NodeType.USER, np.ones((1, 4)))
        with pytest.raises(RuntimeError):
            graph.neighbors(NodeType.USER, 0)

    def test_add_edges_after_finalize_rejected(self):
        graph = _small_graph()
        spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        with pytest.raises(RuntimeError):
            graph.add_edges(spec, [0], [0])

    def test_node_features_batch(self):
        graph = _small_graph()
        features = graph.node_features(NodeType.USER, [0, 2])
        assert features.shape == (2, 4)
        np.testing.assert_allclose(features[0], graph.node_feature(NodeType.USER, 0))
