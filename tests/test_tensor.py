"""Tests for the autodiff Tensor: gradients, broadcasting, numerical checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.ndarray.tensor import Tensor, no_grad, is_grad_enabled, zeros, ones


def numerical_gradient(func, value, eps=1e-6):
    """Central-difference numerical gradient of a scalar-valued function."""
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = func(value)
        flat[i] = original - eps
        lower = func(value)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(op, shape, seed=0, atol=1e-5):
    """Compare autograd gradient against the numerical gradient of ``op``."""
    rng = np.random.default_rng(seed)
    value = rng.normal(size=shape)
    tensor = Tensor(value.copy(), requires_grad=True)
    out = op(tensor)
    out.sum().backward()

    def scalar(v):
        return float(op(Tensor(v)).sum().item())

    numeric = numerical_gradient(scalar, value.copy())
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol)


class TestBasicOps:
    def test_add_gradients_broadcast(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3 * np.ones(4))

    def test_mul_gradients(self):
        check_gradient(lambda t: t * t * 2.0, (3, 2))

    def test_div_gradients(self):
        check_gradient(lambda t: t / 3.0 + 1.0 / (t + 10.0), (4,))

    def test_sub_and_neg(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = (5.0 - a) - (-a)
        np.testing.assert_allclose(out.numpy(), [5.0, 5.0])

    def test_pow_gradient(self):
        check_gradient(lambda t: (t + 5.0) ** 3, (3,))

    def test_rsub_rtruediv(self):
        a = Tensor(np.array([2.0, 4.0]))
        np.testing.assert_allclose((1.0 / a).numpy(), [0.5, 0.25])
        np.testing.assert_allclose((3.0 - a).numpy(), [1.0, -1.0])

    def test_scalar_backward_requires_scalar(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()


class TestMatmul:
    def test_matrix_matrix_gradient(self):
        rng = np.random.default_rng(0)
        b_value = rng.normal(size=(4, 2))
        check_gradient(lambda t: t @ Tensor(b_value), (3, 4))

    def test_matrix_vector_gradient(self):
        rng = np.random.default_rng(1)
        vec = rng.normal(size=3)
        check_gradient(lambda t: t @ Tensor(vec), (5, 3))

    def test_vector_matrix_gradient(self):
        rng = np.random.default_rng(2)
        mat = rng.normal(size=(3, 4))
        check_gradient(lambda t: t @ Tensor(mat), (3,))

    def test_batched_matmul_with_vector(self):
        rng = np.random.default_rng(3)
        vec = rng.normal(size=4)
        check_gradient(lambda t: t @ Tensor(vec), (2, 3, 4))

    def test_gradient_wrt_vector_operand(self):
        rng = np.random.default_rng(4)
        mat_value = rng.normal(size=(5, 3, 4))
        vec = Tensor(rng.normal(size=4), requires_grad=True)
        out = Tensor(mat_value) @ vec
        out.sum().backward()
        expected = mat_value.reshape(-1, 4).sum(axis=0)
        np.testing.assert_allclose(vec.grad, expected, atol=1e-10)

    def test_vector_vector_dot(self):
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 5.0, 6.0]), requires_grad=True)
        out = a @ b
        out.backward()
        np.testing.assert_allclose(a.grad, [4.0, 5.0, 6.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0, 3.0])


class TestReductionsAndShape:
    def test_sum_axis_gradient(self):
        check_gradient(lambda t: t.sum(axis=0), (3, 4))

    def test_mean_gradient(self):
        check_gradient(lambda t: t.mean(axis=1), (2, 5))

    def test_max_gradient_unique(self):
        value = np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        t = Tensor(value, requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = np.zeros_like(value)
        expected[0, 1] = 1.0
        expected[1, 0] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_reshape_transpose_gradient(self):
        check_gradient(lambda t: t.reshape(6).transpose(), (2, 3))
        check_gradient(lambda t: t.transpose(1, 0) * 2.0, (2, 3))

    def test_getitem_gradient_accumulates(self):
        t = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        (t[np.array([0, 0, 2])]).sum().backward()
        np.testing.assert_allclose(t.grad, [[2, 2], [0, 0], [1, 1]])

    def test_gather_rows_repeated_indices(self):
        t = Tensor(np.ones((4, 3)), requires_grad=True)
        t.gather_rows(np.array([1, 1, 1, 3])).sum().backward()
        np.testing.assert_allclose(t.grad[:, 0], [0, 3, 0, 1])

    def test_concat_and_stack_gradients(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        Tensor.concat([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

        c = Tensor(np.ones(3), requires_grad=True)
        d = Tensor(np.ones(3), requires_grad=True)
        (Tensor.stack([c, d], axis=0) * 2.0).sum().backward()
        np.testing.assert_allclose(c.grad, 2 * np.ones(3))
        np.testing.assert_allclose(d.grad, 2 * np.ones(3))


class TestNonlinearities:
    @pytest.mark.parametrize("op", [
        lambda t: t.exp(),
        lambda t: (t * t + 1.0).log(),
        lambda t: t.sigmoid(),
        lambda t: t.tanh(),
        lambda t: t.relu() + t.leaky_relu(0.1),
        lambda t: t.softmax(axis=-1),
        lambda t: t.log_softmax(axis=-1),
    ])
    def test_gradients_match_numerical(self, op):
        check_gradient(op, (3, 4), atol=1e-4)

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(t.softmax(axis=-1).numpy().sum(axis=-1),
                                   np.ones(5))

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor(np.array([-1000.0, 0.0, 1000.0]))
        out = t.sigmoid().numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_clip_gradient_masks(self):
        t = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestGradMode:
    def test_no_grad_disables_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = (a * 2).sum()
        assert out._backward is None
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        detached = (a * 2).detach()
        assert not detached.requires_grad

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_grad_accumulates_across_backwards(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 4.0, 4.0])


class TestFactoriesAndRepr:
    def test_zeros_ones(self):
        assert zeros((2, 3)).numpy().sum() == 0
        assert ones(4).numpy().sum() == 4

    def test_repr_and_len(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        assert "requires_grad" in repr(t)
        assert len(t) == 2
        assert t.size == 6 and t.ndim == 2

    def test_comparisons_return_numpy(self):
        t = Tensor(np.array([1.0, 3.0]))
        assert (t > 2.0).tolist() == [False, True]
        assert (t <= 1.0).tolist() == [True, False]


class TestPropertyBased:
    @given(arrays(np.float64, array_shapes(min_dims=1, max_dims=2, max_side=5),
                  elements=st.floats(-10, 10)))
    @settings(max_examples=40, deadline=None)
    def test_softmax_is_distribution(self, value):
        out = Tensor(value).softmax(axis=-1).numpy()
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[:-1]),
                                   atol=1e-9)

    @given(arrays(np.float64, st.integers(1, 6).map(lambda n: (n, n)),
                  elements=st.floats(-5, 5)),
           arrays(np.float64, st.integers(1, 6).map(lambda n: (n,)),
                  elements=st.floats(-5, 5)))
    @settings(max_examples=30, deadline=None)
    def test_add_commutes(self, a, b):
        if a.shape[0] != b.shape[0]:
            return
        left = (Tensor(a) + Tensor(b)).numpy()
        right = (Tensor(b) + Tensor(a)).numpy()
        np.testing.assert_allclose(left, right)

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_matmul_shape_contract(self, n, k, m):
        a = Tensor(np.ones((n, k)))
        b = Tensor(np.ones((k, m)))
        assert (a @ b).shape == (n, m)
