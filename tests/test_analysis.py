"""Tests for :mod:`repro.analysis`, the repo-specific invariant linter.

Every rule gets a fixture pair — a minimal bad snippet it must fire on and
the idiomatic good version it must stay silent on — plus coverage of the
framework itself: inline suppressions (same-line and line-above), the
unused-suppression audit, rule selection, JSON output schema, and the
CLI entry point.
"""

import json
import pathlib

import pytest

from repro.analysis import Analyzer, Violation, all_rules
from repro.analysis.core import RULES, Rule, register_rule
from repro.analysis.runner import LintReport, iter_python_files

SRC = "src/repro/module.py"


def rules_fired(source, path=SRC, select=None):
    """The set of rule names an analysis of ``source`` at ``path`` emits."""
    return {v.rule for v in Analyzer(select=select).check_source(source, path)}


# ---------------------------------------------------------------------- #
# Framework
# ---------------------------------------------------------------------- #
class TestFramework:
    def test_all_rules_registers_initial_battery(self):
        expected = {"RNG001", "RNG002", "CLK001", "ASY001", "SHM001",
                    "SPEC001", "REG001", "EXC001", "EXC002", "SUP001"}
        assert expected <= set(all_rules())

    def test_every_rule_documents_its_contract(self):
        for name, cls in all_rules().items():
            assert cls.__doc__ and name in cls.__doc__.splitlines()[0], name

    def test_register_rejects_duplicate_and_anonymous_rules(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_rule
            class Duplicate(Rule):
                """Duplicate of RNG001 for the test."""
                name = "RNG001"

        with pytest.raises(ValueError, match="no name"):
            @register_rule
            class Anonymous(Rule):
                """A rule that forgot to set a name."""

        assert "RNG001" in RULES

    def test_select_limits_rules_but_keeps_suppression_audit(self):
        analyzer = Analyzer(select=["RNG002"])
        assert analyzer.rule_names() == ["RNG002", "SUP001"]

    def test_select_unknown_rule_lists_known_ones(self):
        with pytest.raises(ValueError, match="RNG001"):
            Analyzer(select=["NOPE001"])

    def test_syntax_error_reported_not_raised(self):
        violations = Analyzer().check_source("def broken(:\n", SRC)
        assert [v.rule for v in violations] == ["SYNTAX"]

    def test_violation_format_is_path_line_col_rule(self):
        violation = Violation(rule="RNG002", path=SRC, line=3, col=7,
                              message="boom")
        assert violation.format() == f"{SRC}:3:7: RNG002 boom"


# ---------------------------------------------------------------------- #
# Suppressions
# ---------------------------------------------------------------------- #
class TestSuppressions:
    BAD = "import numpy as np\nrng = np.random.default_rng()\n"

    def test_same_line_allow_silences_the_rule(self):
        source = ("import numpy as np\n"
                  "rng = np.random.default_rng()"
                  "  # repro: allow[RNG002] -- test fixture\n")
        assert rules_fired(source) == set()

    def test_line_above_allow_silences_the_rule(self):
        source = ("import numpy as np\n"
                  "# repro: allow[RNG002] -- test fixture\n"
                  "rng = np.random.default_rng()\n")
        assert rules_fired(source) == set()

    def test_allow_covers_only_the_named_rule(self):
        source = ("import numpy as np\n"
                  "rng = np.random.default_rng()"
                  "  # repro: allow[EXC001] -- wrong rule\n")
        # RNG002 still fires, and the EXC001 suppression is unused.
        assert rules_fired(source) == {"RNG002", "SUP001"}

    def test_unused_suppression_fires_sup001(self):
        assert rules_fired("x = 1  # repro: allow[RNG002] -- stale\n") \
            == {"SUP001"}

    def test_unknown_rule_suppression_fires_sup001(self):
        assert rules_fired("x = 1  # repro: allow[BOGUS999]\n") == {"SUP001"}

    def test_multi_rule_allow_list(self):
        source = ("import numpy as np, time\n"
                  "async def f():\n"
                  "    time.sleep(1); np.random.seed(0)"
                  "  # repro: allow[ASY001, RNG001] -- fixture\n")
        assert rules_fired(source) == set()


# ---------------------------------------------------------------------- #
# Rule fixtures: each fires on the bad snippet, not on the good one
# ---------------------------------------------------------------------- #
class TestRNG001:
    def test_fires_on_legacy_global_call(self):
        assert "RNG001" in rules_fired(
            "import numpy as np\nx = np.random.randint(10)\n")
        assert "RNG001" in rules_fired(
            "import numpy as np\nnp.random.seed(0)\n")

    def test_silent_on_generator_plumbing_and_outside_src(self):
        good = ("import numpy as np\n"
                "rng = np.random.Generator(np.random.Philox(7))\n"
                "x = rng.integers(10)\n")
        assert "RNG001" not in rules_fired(good)
        bad = "import numpy as np\nx = np.random.randint(10)\n"
        assert rules_fired(bad, path="examples/demo.py") == set()


class TestRNG002:
    def test_fires_on_unseeded_forms(self):
        assert "RNG002" in rules_fired(
            "import numpy as np\nrng = np.random.default_rng()\n")
        assert "RNG002" in rules_fired(
            "import numpy as np\nrng = np.random.default_rng(None)\n")
        assert "RNG002" in rules_fired(
            "import numpy as np\nrng = np.random.default_rng(seed=None)\n")

    def test_silent_when_seed_threaded_in(self):
        assert "RNG002" not in rules_fired(
            "import numpy as np\nrng = np.random.default_rng(42)\n")
        assert "RNG002" not in rules_fired(
            "import numpy as np\n"
            "def f(seed):\n    return np.random.default_rng(seed)\n")


class TestCLK001:
    def test_fires_on_wall_clock_reads(self):
        assert "CLK001" in rules_fired(
            "import time\nnow = time.time()\n",
            path="src/repro/graph/decay.py")
        assert "CLK001" in rules_fired(
            "import datetime\nnow = datetime.datetime.now()\n")

    def test_silent_on_monotonic_clocks(self):
        good = ("import time\n"
                "start = time.monotonic()\n"
                "t = time.perf_counter() - start\n")
        assert "CLK001" not in rules_fired(good, path="src/repro/serving/x.py")


class TestASY001:
    def test_fires_on_blocking_calls_in_async_def(self):
        assert "ASY001" in rules_fired(
            "import time\nasync def f():\n    time.sleep(1)\n")
        assert "ASY001" in rules_fired(
            "import subprocess\nasync def f():\n"
            "    subprocess.run(['ls'])\n")
        assert "ASY001" in rules_fired(
            "async def f(sock):\n    sock.sendall(b'x')\n")

    def test_silent_on_async_equivalents_and_sync_defs(self):
        good = ("import asyncio\n"
                "async def f():\n    await asyncio.sleep(1)\n")
        assert "ASY001" not in rules_fired(good)
        sync = "import time\ndef f():\n    time.sleep(1)\n"
        assert "ASY001" not in rules_fired(sync)
        # A sync helper nested inside async def runs off-loop (executor).
        nested = ("import time\n"
                  "async def f():\n"
                  "    def blocking():\n        time.sleep(1)\n"
                  "    return blocking\n")
        assert "ASY001" not in rules_fired(nested)


class TestSHM001:
    def test_fires_when_owner_never_unlinks(self):
        bad = ("from multiprocessing.shared_memory import SharedMemory\n"
               "class Owner:\n"
               "    def __init__(self):\n"
               "        self._shm = SharedMemory(create=True, size=64)\n"
               "    def close(self):\n"
               "        self._shm.close()\n")
        assert "SHM001" in rules_fired(bad)

    def test_silent_when_close_and_unlink_reachable(self):
        good = ("from multiprocessing.shared_memory import SharedMemory\n"
                "class Owner:\n"
                "    def __init__(self):\n"
                "        self._shm = SharedMemory(create=True, size=64)\n"
                "    def close(self):\n"
                "        self._shm.close()\n"
                "        self._shm.unlink()\n")
        assert "SHM001" not in rules_fired(good)

    def test_silent_on_attach_without_create(self):
        attach = ("from multiprocessing.shared_memory import SharedMemory\n"
                  "def attach(name):\n"
                  "    return SharedMemory(name=name)\n")
        assert "SHM001" not in rules_fired(attach)


class TestSPEC001:
    def test_fires_on_unvalidated_field(self):
        bad = ("from dataclasses import dataclass\n"
               "@dataclass\n"
               "class ThingSpec:\n"
               "    knob: int = 1\n"
               "    def validate(self):\n"
               "        return self\n")
        assert "SPEC001" in rules_fired(bad, path="src/repro/api/bad_spec.py")

    def test_silent_when_every_field_is_mentioned(self):
        good = ("from dataclasses import dataclass\n"
                "@dataclass\n"
                "class ThingSpec:\n"
                "    knob: int = 1\n"
                "    def validate(self):\n"
                "        if self.knob < 0:\n"
                "            raise ValueError('knob must be non-negative')\n"
                "        return self\n")
        assert "SPEC001" not in rules_fired(good,
                                            path="src/repro/api/ok_spec.py")

    def test_out_of_scope_outside_api(self):
        bad = ("from dataclasses import dataclass\n"
               "@dataclass\n"
               "class RelationSpec:\n"
               "    src: str = 'user'\n")
        assert "SPEC001" not in rules_fired(bad,
                                            path="src/repro/graph/schema.py")

    def test_real_spec_module_round_trips(self):
        # The dynamic half runs against the importable repro.api.spec.
        violations = Analyzer(select=["SPEC001"]).check_file(
            "src/repro/api/spec.py", "src/repro/api/spec.py")
        assert [v for v in violations if "round-trip" in v.message] == []


class TestREG001:
    def test_fires_on_unknown_literal_name(self):
        assert "REG001" in rules_fired(
            "from repro.api import build_model\n"
            "m = build_model('zommer', graph)\n",
            path="examples/demo.py")
        assert "REG001" in rules_fired(
            "from repro.api import load_dataset\n"
            "d = load_dataset('no-such-dataset')\n")

    def test_silent_on_registered_names_aliases_and_dynamic_names(self):
        good = ("from repro.api import build_model, load_dataset\n"
                "d = load_dataset('synthetic-taobao')\n"
                "m = build_model('zoomer', d)\n"
                "b = build_model('PinSage', d)\n")
        assert "REG001" not in rules_fired(good, path="benchmarks/run.py")
        dynamic = ("from repro.api import build_model\n"
                   "def f(name, graph):\n"
                   "    return build_model(name, graph)\n")
        assert "REG001" not in rules_fired(dynamic)

    def test_checks_sampler_override_keyword(self):
        assert "REG001" in rules_fired(
            "from repro.api import build_model\n"
            "m = build_model('PinSage', g, sampler='no-such-sampler')\n")


class TestEXC001:
    def test_fires_on_bare_except_and_swallowing_handlers(self):
        assert "EXC001" in rules_fired(
            "try:\n    x = 1\nexcept:\n    x = 2\n")
        assert "EXC001" in rules_fired(
            "try:\n    x = 1\nexcept Exception:\n    pass\n")

    def test_silent_on_narrow_or_handled_exceptions(self):
        narrow = "try:\n    x = 1\nexcept (OSError, ValueError):\n    pass\n"
        assert "EXC001" not in rules_fired(narrow)
        handled = ("import logging\n"
                   "try:\n    x = 1\n"
                   "except Exception:\n"
                   "    logging.exception('boom')\n    raise\n")
        assert "EXC001" not in rules_fired(handled)


class TestEXC002:
    RECOVERY = "src/repro/serving/daemon.py"

    def test_fires_on_swallowing_broad_catch_in_recovery_layer(self):
        swallowed = ("import logging\n"
                     "try:\n    x = 1\n"
                     "except Exception:\n"
                     "    logging.exception('boom')\n")
        assert "EXC002" in rules_fired(swallowed, path=self.RECOVERY)
        assert "EXC002" in rules_fired(swallowed,
                                       path="src/repro/parallel/pool.py")

    def test_fires_on_attribute_and_tuple_catches(self):
        cancelled = ("import asyncio\n"
                     "try:\n    x = 1\n"
                     "except asyncio.CancelledError:\n    x = 2\n")
        assert "EXC002" in rules_fired(cancelled, path=self.RECOVERY)
        tupled = ("try:\n    x = 1\n"
                  "except (ValueError, BaseException):\n    x = 2\n")
        assert "EXC002" in rules_fired(tupled, path=self.RECOVERY)

    def test_silent_when_the_handler_reraises(self):
        reraised = ("try:\n    x = 1\n"
                    "except Exception as error:\n"
                    "    if x:\n        raise RuntimeError('wrap') from error\n"
                    "    raise\n")
        assert "EXC002" not in rules_fired(reraised, path=self.RECOVERY)

    def test_silent_on_narrow_catches_and_outside_recovery_layers(self):
        narrow = ("try:\n    x = 1\n"
                  "except RuntimeError:\n    x = 2\n")
        assert "EXC002" not in rules_fired(narrow, path=self.RECOVERY)
        swallowed = ("try:\n    x = 1\n"
                     "except Exception:\n    x = 2\n")
        assert "EXC002" not in rules_fired(swallowed,
                                           path="src/repro/api/pipeline.py")

    def test_bare_except_is_exc001_territory(self):
        bare = "try:\n    x = 1\nexcept:\n    x = 2\n"
        fired = rules_fired(bare, path=self.RECOVERY)
        assert "EXC001" in fired and "EXC002" not in fired


# ---------------------------------------------------------------------- #
# Runner / CLI
# ---------------------------------------------------------------------- #
class TestRunner:
    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("not python")
        found = list(iter_python_files([str(tmp_path)]))
        assert found == [str(tmp_path / "pkg" / "a.py")]

    def test_json_report_schema(self):
        report = LintReport(files_checked=2, violations=[
            Violation(rule="RNG002", path=SRC, line=1, col=0, message="m")])
        document = json.loads(report.render("json"))
        assert document["files_checked"] == 2
        assert document["violation_count"] == 1
        assert document["violations"] == [
            {"rule": "RNG002", "path": SRC, "line": 1, "col": 0,
             "message": "m"}]
        assert report.exit_code == 1
        assert LintReport().exit_code == 0

    def test_cli_lint_exits_nonzero_on_bad_file(self, tmp_path, capsys,
                                                monkeypatch):
        from repro.cli import main
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\n"
                       "rng = np.random.default_rng()\n")
        # Rules scope on the repo-relative path, so lint from the tree root.
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "src"]) == 1
        assert "RNG002" in capsys.readouterr().out

    def test_cli_lint_json_and_list_rules(self, tmp_path, capsys):
        from repro.cli import main
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["violations"] == []
        assert main(["lint", "--list-rules"]) == 0
        listing = capsys.readouterr().out
        for rule_name in all_rules():
            assert rule_name in listing


# ---------------------------------------------------------------------- #
# The tree itself
# ---------------------------------------------------------------------- #
class TestMergedTreeIsClean:
    def test_repo_lints_clean(self, capsys, monkeypatch):
        """The gate CI enforces: the merged tree has zero violations.

        Runs the real CLI over the same paths as the CI step
        (``python -m repro.cli lint src benchmarks examples``) from the
        repo root, so a PR that introduces a contract violation — or a
        suppression that went stale — fails the fast test loop too, with
        the violation list in the assertion message.
        """
        from repro.cli import main
        repo_root = pathlib.Path(__file__).resolve().parent.parent
        monkeypatch.chdir(repo_root)
        code = main(["lint", "src", "benchmarks", "examples"])
        output = capsys.readouterr().out
        assert code == 0, f"merged tree must lint clean:\n{output}"
        assert "0 violation" in output or "no violations" in output.lower()
