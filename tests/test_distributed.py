"""Tests for the parameter-server, pipeline and cost-model simulations."""

import numpy as np
import pytest

from repro.baselines import STAMPModel
from repro.distributed import (
    AsyncPipeline,
    AsyncTrainingSimulator,
    GNNCostModel,
    ParameterServer,
    ParameterServerCluster,
    PipelineStage,
)
from repro.training.dataloader import ImpressionDataLoader


class TestParameterServer:
    def test_register_pull_push(self):
        server = ParameterServer(0, learning_rate=0.1)
        server.register("w", np.ones(3))
        value, version = server.pull("w")
        assert version == 0
        np.testing.assert_allclose(value, np.ones(3))
        new_version = server.push("w", np.ones(3))
        assert new_version == 1
        updated, _ = server.pull("w")
        np.testing.assert_allclose(updated, np.ones(3) * 0.9)

    def test_push_shape_mismatch(self):
        server = ParameterServer(0)
        server.register("w", np.ones(3))
        with pytest.raises(ValueError):
            server.push("w", np.ones(4))

    def test_traffic_accounting(self):
        server = ParameterServer(0)
        server.register("w", np.ones(4))
        server.pull("w")
        server.push("w", np.zeros(4))
        assert server.stats.pulls == 1
        assert server.stats.pushes == 1
        assert server.stats.bytes_pulled == 32
        assert server.stats.bytes_pushed == 32


class TestParameterServerCluster:
    def test_state_partitioned_across_servers(self):
        cluster = ParameterServerCluster(num_servers=3)
        state = {f"p{i}": np.ones(2) * i for i in range(12)}
        cluster.register_state(state)
        counts = cluster.placement_counts()
        assert sum(counts) == 12
        assert max(counts) < 12          # not everything on one server

    def test_pull_push_roundtrip(self):
        cluster = ParameterServerCluster(num_servers=2, learning_rate=1.0)
        cluster.register_state({"a": np.array([5.0]), "b": np.array([1.0, 2.0])})
        cluster.push_gradients({"a": np.array([1.0])})
        values, versions = cluster.pull_state()
        np.testing.assert_allclose(values["a"], [4.0])
        assert versions["a"] == 1 and versions["b"] == 0
        assert cluster.total_traffic_bytes() > 0

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            ParameterServerCluster(num_servers=0)


class TestAsyncTrainingSimulator:
    def test_losses_produced_and_model_synced(self, tiny_graph, tiny_splits):
        train, _ = tiny_splits
        model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        cluster = ParameterServerCluster(num_servers=2, learning_rate=0.05)
        simulator = AsyncTrainingSimulator(model, cluster, num_workers=2,
                                           staleness=2, seed=0)
        losses = simulator.run(train[:120], batch_size=32, steps=6)
        assert len(losses) == 6
        assert simulator.total_steps == 6
        # Model parameters must equal the server-side values after the run.
        server_state, _ = cluster.pull_state()
        local_state = model.state_dict()
        for name, value in server_state.items():
            np.testing.assert_allclose(local_state[name], value)

    def test_invalid_configuration(self, tiny_graph):
        model = STAMPModel(tiny_graph, embedding_dim=8)
        cluster = ParameterServerCluster(num_servers=1)
        with pytest.raises(ValueError):
            AsyncTrainingSimulator(model, cluster, num_workers=0)


class TestAsyncPipeline:
    def test_sequential_vs_pipelined(self):
        pipeline = AsyncPipeline.default_training_pipeline(0.01, 0.02, 0.03)
        assert pipeline.sequential_time(10) == pytest.approx(0.6)
        assert pipeline.pipelined_time(10) == pytest.approx(0.06 + 0.03 * 9)
        assert pipeline.speedup(10) > 1.0
        assert pipeline.speedup(1) == pytest.approx(1.0)

    def test_bottleneck_and_utilisation(self):
        pipeline = AsyncPipeline([PipelineStage("a", 0.01),
                                  PipelineStage("b", 0.05)])
        assert pipeline.bottleneck().name == "b"
        utilisation = pipeline.utilisation(100)
        assert utilisation["b"] > utilisation["a"]
        assert utilisation["b"] <= 1.0 + 1e-9

    def test_zero_batches(self):
        pipeline = AsyncPipeline.default_training_pipeline(0.01, 0.01, 0.01)
        assert pipeline.pipelined_time(0) == 0.0
        assert pipeline.throughput(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncPipeline([])
        with pytest.raises(ValueError):
            PipelineStage("x", -1.0)
        with pytest.raises(ValueError):
            AsyncPipeline.default_training_pipeline(0.1, 0.1, 0.1).sequential_time(-1)


class TestGNNCostModel:
    def test_nodes_grow_with_fanout_and_layers(self):
        model = GNNCostModel()
        assert model.sampled_nodes_per_example([5]) < \
            model.sampled_nodes_per_example([10])
        assert model.sampled_nodes_per_example([10]) < \
            model.sampled_nodes_per_example([10, 10])

    def test_memory_and_time_monotone_in_fanout(self):
        model = GNNCostModel()
        sweep = model.sweep_fanouts([5, 10, 20, 30], num_layers=2, batch_size=64)
        memories = [cost.memory_bytes for _, cost in sweep]
        speeds = [cost.iterations_per_second for _, cost in sweep]
        assert memories == sorted(memories)
        assert speeds == sorted(speeds, reverse=True)

    def test_exponential_layer_growth(self):
        """Doubling layers at fanout f multiplies tree size ~f-fold (Fig. 4a)."""
        model = GNNCostModel()
        one_layer = model.sampled_nodes_per_example([10])
        two_layers = model.sampled_nodes_per_example([10, 10])
        assert two_layers / one_layer > 5

    def test_measure_and_calibrate(self, tiny_graph, tiny_splits):
        train, _ = tiny_splits
        model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        loader = ImpressionDataLoader(train[:32], batch_size=16)
        batch = next(iter(loader.epoch()))
        cost_model = GNNCostModel()
        measured = cost_model.measure(model, batch)
        assert measured.seconds > 0
        cost_model.calibrate(measured, fanouts=(10, 5), batch_size=16)
        predicted = cost_model.predict((10, 5), 16)
        assert predicted.seconds > 0
        row = predicted.as_row()
        assert set(row) == {"sampled_nodes", "memory_mb", "seconds_per_iter",
                            "iters_per_second"}

    def test_measure_requires_positive_repeats(self, tiny_graph, tiny_splits):
        train, _ = tiny_splits
        model = STAMPModel(tiny_graph, embedding_dim=8)
        loader = ImpressionDataLoader(train[:8], batch_size=8)
        batch = next(iter(loader.epoch()))
        with pytest.raises(ValueError):
            GNNCostModel().measure(model, batch, repeats=0)
