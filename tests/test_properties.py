"""Cross-cutting property-based tests on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphBuilder
from repro.graph.schema import EdgeType, NodeType, RelationSpec
from repro.sampling import FocalBiasedSampler, focal_relevance_scores
from repro.serving import (
    InvertedIndex,
    LatencySimulator,
    NeighborCache,
    TrafficSplitter,
)
from repro.training.metrics import auc_score, hit_rate_at_k


# --------------------------------------------------------------------------- #
# Graph construction properties
# --------------------------------------------------------------------------- #
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 4),
                          st.lists(st.integers(0, 9), min_size=1, max_size=4)),
                min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_builder_edge_symmetry(sessions):
    """Every interaction edge must exist in both directions with equal weight."""
    rng = np.random.default_rng(0)
    builder = GraphBuilder(feature_dim=4)
    builder.set_node_features(NodeType.USER, rng.normal(size=(6, 4)))
    builder.set_node_features(NodeType.QUERY, rng.normal(size=(5, 4)))
    builder.set_node_features(NodeType.ITEM, rng.normal(size=(10, 4)))
    for user, query, items in sessions:
        builder.add_session(user, query, items)
    graph = builder.build()
    forward = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
    backward = RelationSpec(NodeType.ITEM, EdgeType.CLICK, NodeType.USER)
    if forward in graph.relations:
        for user in range(6):
            ids, weights = graph.relation(forward).neighbors(user)
            for item, weight in zip(ids, weights):
                back_ids, back_weights = graph.relation(backward).neighbors(item)
                position = list(back_ids).index(user)
                assert back_weights[position] == pytest.approx(weight)


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 4),
                          st.lists(st.integers(0, 9), min_size=1, max_size=4)),
                min_size=1, max_size=20))
@settings(max_examples=20, deadline=None)
def test_builder_total_edges_even(sessions):
    """Symmetric construction implies an even total directed-edge count."""
    rng = np.random.default_rng(1)
    builder = GraphBuilder(feature_dim=4)
    builder.set_node_features(NodeType.USER, rng.normal(size=(6, 4)))
    builder.set_node_features(NodeType.QUERY, rng.normal(size=(5, 4)))
    builder.set_node_features(NodeType.ITEM, rng.normal(size=(10, 4)))
    for user, query, items in sessions:
        builder.add_session(user, query, items)
    graph = builder.build()
    assert graph.total_edges % 2 == 0


# --------------------------------------------------------------------------- #
# Sampler properties
# --------------------------------------------------------------------------- #
@given(st.integers(1, 8), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_focal_sampler_never_exceeds_budget(k, seed):
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(feature_dim=4)
    builder.set_node_features(NodeType.USER, rng.normal(size=(3, 4)))
    builder.set_node_features(NodeType.QUERY, rng.normal(size=(3, 4)))
    builder.set_node_features(NodeType.ITEM, rng.normal(size=(12, 4)))
    for _ in range(10):
        builder.add_session(int(rng.integers(3)), int(rng.integers(3)),
                            rng.integers(0, 12, size=3).tolist())
    graph = builder.build()
    sampler = FocalBiasedSampler(seed=seed)
    tree = sampler.sample(graph, NodeType.USER, 0, (k, k),
                          focal_vector=rng.normal(size=4))
    assert len(tree.children) <= k
    for _, child, _ in tree.children:
        assert len(child.children) <= k


@given(st.integers(2, 30), st.integers(0, 1_000))
@settings(max_examples=30, deadline=None)
def test_relevance_scores_bounded_for_unit_vectors(n, seed):
    """Eq. 5 on unit vectors yields scores in [-1/3, 1]."""
    rng = np.random.default_rng(seed)
    focal = rng.normal(size=4)
    focal /= np.linalg.norm(focal)
    neighbors = rng.normal(size=(n, 4))
    neighbors /= np.linalg.norm(neighbors, axis=1, keepdims=True)
    scores = focal_relevance_scores(focal, neighbors)
    assert np.all(scores <= 1.0 + 1e-9)
    assert np.all(scores >= -1.0 / 3.0 - 1e-9)


# --------------------------------------------------------------------------- #
# Metric properties
# --------------------------------------------------------------------------- #
@given(st.lists(st.floats(0, 1), min_size=4, max_size=40),
       st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_auc_invariant_to_monotone_transform(scores, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=len(scores))
    # Round to a coarse grid so the affine transform cannot create or break
    # ties through floating-point rounding.
    scores = np.round(np.asarray(scores), 3)
    direct = auc_score(labels, scores)
    transformed = auc_score(labels, 3.0 * scores + 1.0)
    assert direct == pytest.approx(transformed)


@given(st.integers(1, 20), st.integers(1, 30))
@settings(max_examples=30, deadline=None)
def test_hit_rate_monotone_in_k(num_requests, pool):
    rng = np.random.default_rng(num_requests * 31 + pool)
    ranked = [rng.permutation(pool).tolist() for _ in range(num_requests)]
    clicked = [int(rng.integers(pool)) for _ in range(num_requests)]
    previous = 0.0
    for k in (1, max(pool // 2, 1), pool):
        current = hit_rate_at_k(ranked, clicked, k)
        assert current >= previous - 1e-12
        previous = current
    assert hit_rate_at_k(ranked, clicked, pool) == pytest.approx(1.0)


# --------------------------------------------------------------------------- #
# Serving properties
# --------------------------------------------------------------------------- #
@given(st.lists(st.tuples(st.integers(0, 50), st.floats(0, 10)),
                min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_inverted_index_postings_sorted(entries):
    index = InvertedIndex(posting_length=10)
    index.add_posting(0, entries)
    posting = index.lookup(0)
    scores = [score for _, score in posting]
    assert scores == sorted(scores, reverse=True)
    assert len(posting) <= 10


@given(st.integers(1, 128), st.floats(0.5, 10.0),
       st.lists(st.floats(10, 5_000), min_size=2, max_size=8))
@settings(max_examples=30, deadline=None)
def test_latency_monotone_in_qps(servers, service_ms, qps_values):
    simulator = LatencySimulator(num_servers=servers, service_time_ms=service_ms)
    qps_sorted = sorted(qps_values)
    times = [simulator.expected_response_ms(q) for q in qps_sorted]
    assert all(b >= a - 1e-9 for a, b in zip(times, times[1:]))
    assert times[0] >= service_ms - 1e-9


@given(st.integers(1, 10), st.lists(st.integers(0, 100), min_size=1,
                                    max_size=50))
@settings(max_examples=30, deadline=None)
def test_neighbor_cache_capacity_invariant(capacity, node_ids):
    cache = NeighborCache(capacity=capacity, max_nodes=20)
    for node_id in node_ids:
        cache.put("user", node_id, [("item", i, 1.0) for i in range(15)])
        entry = cache.get("user", node_id)
        assert len(entry) <= capacity
    assert len(cache) <= 20


# --------------------------------------------------------------------------- #
# Traffic-splitter properties (serving-time experimentation)
# --------------------------------------------------------------------------- #
_salts = st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                 min_size=1, max_size=10)


@given(_salts, st.floats(0.05, 0.95),
       st.lists(st.integers(0, 2**63 - 1), min_size=1, max_size=50))
@settings(max_examples=30, deadline=None)
def test_splitter_stable_across_instances(salt, fraction, user_ids):
    """Assignment is a pure function of (salt, fractions, user_id)."""
    fractions = (1.0 - fraction, fraction)
    first = TrafficSplitter(salt, ("control", "challenger"), fractions)
    second = TrafficSplitter(salt, ("control", "challenger"), fractions)
    np.testing.assert_array_equal(first.assign_batch(user_ids),
                                  second.assign_batch(user_ids))
    assert all(first.assign(u) == second.assign(u) for u in user_ids[:5])


@given(_salts, st.floats(0.05, 0.95))
@settings(max_examples=15, deadline=None)
def test_splitter_observed_fraction_converges(salt, fraction):
    """Over many users the observed split approaches the configured one."""
    splitter = TrafficSplitter(salt, ("control", "challenger"),
                               (1.0 - fraction, fraction))
    observed = (splitter.assign_batch(np.arange(20_000)) == 1).mean()
    assert observed == pytest.approx(fraction, abs=0.03)


@given(_salts, _salts, st.floats(0.2, 0.8))
@settings(max_examples=20, deadline=None)
def test_splitter_salt_reshuffles(salt_one, salt_two, fraction):
    """Different salts produce different (but equally sized) assignments."""
    if salt_one == salt_two:
        return
    users = np.arange(2_000)
    fractions = (1.0 - fraction, fraction)
    one = TrafficSplitter(salt_one, ("a", "b"), fractions).assign_batch(users)
    two = TrafficSplitter(salt_two, ("a", "b"), fractions).assign_batch(users)
    assert np.any(one != two)


@given(_salts, st.floats(0.05, 0.45), st.floats(0.5, 0.95))
@settings(max_examples=20, deadline=None)
def test_splitter_ramp_monotone(salt, low, high):
    """A user in the challenger at fraction f stays there for any f' > f."""
    users = np.arange(3_000)
    splitter = TrafficSplitter(salt, ("control", "challenger"),
                               (1.0 - low, low))
    before = splitter.assign_batch(users) == 1
    splitter.set_fractions((1.0 - high, high))
    after = splitter.assign_batch(users) == 1
    assert np.all(after[before])
