"""Tests for the experiment drivers: motivation, A/B test, interpretability."""

import os

import numpy as np
import pytest

from repro.baselines import PinSageModel, STAMPModel
from repro.experiments import (
    ABTestConfig,
    ABTestSimulator,
    ExperimentResult,
    coupling_heatmap_fixed_query,
    coupling_heatmap_fixed_user,
    focal_local_similarity_cdf,
    format_table,
    save_results,
    successive_query_similarities,
)
from repro.experiments.ab_test import ChannelMetrics
from repro.experiments.harness import load_result
from repro.experiments.interpretability import (
    heatmap_variation,
    render_ascii_heatmap,
)
from repro.experiments.motivation import fraction_below


class TestMotivation:
    def test_query_drift_similarities(self, tiny_dataset):
        drift = successive_query_similarities(tiny_dataset, max_users=6, seed=0)
        assert 0 < len(drift) <= 6
        for user, sims in drift.items():
            assert len(sims) >= 1
            assert all(-1.0 - 1e-9 <= s <= 1.0 + 1e-9 for s in sims)

    def test_drift_similarities_are_low_on_average(self, tiny_dataset):
        """Interest drift: successive queries should not be highly similar."""
        drift = successive_query_similarities(tiny_dataset, max_users=10, seed=1)
        values = [s for sims in drift.values() for s in sims]
        assert np.mean(values) < 0.8

    def test_focal_cdf_structure(self, tiny_dataset):
        cdf = focal_local_similarity_cdf(tiny_dataset, history_sessions=None,
                                         num_users=8, num_bins=20)
        assert cdf["bin_edges"].shape == (21,)
        assert cdf["mean_cdf"].shape == (20,)
        assert np.all(np.diff(cdf["mean_cdf"]) >= -1e-9)   # CDF is monotone
        assert cdf["mean_cdf"][-1] == pytest.approx(1.0, abs=1e-6)

    def test_longer_history_has_lower_relevance(self, tiny_dataset):
        """The long-window CDF should dominate (more low-similarity mass)."""
        short = focal_local_similarity_cdf(tiny_dataset, history_sessions=1,
                                           num_users=10, seed=3)
        long = focal_local_similarity_cdf(tiny_dataset, history_sessions=None,
                                          num_users=10, seed=3)
        # Not strictly guaranteed pointwise on a tiny dataset; compare the
        # fraction of similarities below a mid threshold.
        assert fraction_below(long, 0.5) >= fraction_below(short, 0.5) - 0.25

    def test_fraction_below_empty(self):
        assert fraction_below({"bin_edges": np.zeros(0),
                               "mean_cdf": np.zeros(0)}, 0.0) == 0.0


class TestABTest:
    def test_channel_metrics_math(self):
        metrics = ChannelMetrics(impressions=1000, clicks=50, revenue=100.0)
        assert metrics.ctr == pytest.approx(0.05)
        assert metrics.ppc == pytest.approx(2.0)
        assert metrics.rpm == pytest.approx(100.0)
        empty = ChannelMetrics()
        assert empty.ctr == 0.0 and empty.ppc == 0.0 and empty.rpm == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ABTestConfig(num_requests=0).validate()
        with pytest.raises(ValueError):
            ABTestConfig(base_click_prob=2.0).validate()
        with pytest.raises(ValueError):
            ABTestConfig(position_decay=0.0).validate()

    @pytest.mark.parametrize("traffic_fraction", [0.0, -0.5, 1.5])
    def test_traffic_fraction_bounds(self, traffic_fraction):
        with pytest.raises(ValueError):
            ABTestConfig(traffic_fraction=traffic_fraction).validate()
        ABTestConfig(traffic_fraction=1.0).validate()   # inclusive upper edge

    @pytest.mark.parametrize("seed", [1.5, "7", None, True])
    def test_seed_must_be_an_int(self, seed):
        with pytest.raises(ValueError):
            ABTestConfig(seed=seed).validate()

    def test_simulate_impressions_is_reproducible(self, tiny_dataset):
        item_ids = list(range(10))
        one = ABTestSimulator(tiny_dataset, ABTestConfig(seed=3)) \
            .simulate_impressions(0, 0, item_ids)
        two = ABTestSimulator(tiny_dataset, ABTestConfig(seed=3)) \
            .simulate_impressions(0, 0, item_ids)
        assert one == two
        impressions, clicks, revenue = one
        assert impressions == len(item_ids)
        assert 0 <= clicks <= impressions
        assert revenue >= 0.0

    def test_run_produces_lift_rows(self, tiny_dataset, tiny_graph):
        base = PinSageModel(tiny_graph, embedding_dim=8, fanouts=(2, 2), seed=0)
        treatment = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        simulator = ABTestSimulator(tiny_dataset,
                                    ABTestConfig(num_requests=12, seed=0))
        result = simulator.run(base, treatment)
        rows = result.as_rows()
        assert [row["metric"] for row in rows] == ["CTR", "PPC", "RPM"]
        assert result.base.impressions == result.treatment.impressions
        assert result.base.impressions == 12 * simulator.config.top_k

    def test_click_probability_prefers_relevant_items(self, tiny_dataset):
        simulator = ABTestSimulator(tiny_dataset, ABTestConfig(num_requests=5))
        query = 0
        category = tiny_dataset.query_categories[query]
        relevant_items = tiny_dataset.items_in_category(category)
        irrelevant_items = np.where(tiny_dataset.item_categories != category)[0]
        if relevant_items.size and irrelevant_items.size:
            p_rel = simulator._click_probability(0, query, int(relevant_items[0]),
                                                 rank=0)
            p_irr = simulator._click_probability(0, query,
                                                 int(irrelevant_items[0]), rank=0)
            assert p_rel > p_irr

    def test_rank_decay(self, tiny_dataset):
        simulator = ABTestSimulator(tiny_dataset, ABTestConfig(num_requests=5))
        assert simulator._click_probability(0, 0, 0, rank=0) >= \
            simulator._click_probability(0, 0, 0, rank=5)


class TestInterpretability:
    def test_fixed_user_heatmap(self, zoomer_model):
        heatmap = coupling_heatmap_fixed_user(zoomer_model, user_id=0,
                                              query_ids=[0, 1, 2],
                                              item_ids=[0, 1, 2, 3])
        assert heatmap.shape == (3, 4)
        np.testing.assert_allclose(heatmap.sum(axis=1), np.ones(3), atol=1e-6)

    def test_fixed_query_heatmap(self, zoomer_model):
        heatmap = coupling_heatmap_fixed_query(zoomer_model, query_id=0,
                                               user_ids=[0, 1],
                                               item_ids=[0, 1, 2])
        assert heatmap.shape == (2, 3)

    def test_weights_vary_with_focal(self, zoomer_model):
        heatmap = coupling_heatmap_fixed_user(zoomer_model, 0, [0, 1, 2, 3],
                                              [0, 1, 2, 3, 4])
        variation = heatmap_variation(heatmap)
        assert variation["mean_row_std"] > 0.0
        assert variation["max_row_range"] > 0.0

    def test_empty_inputs_rejected(self, zoomer_model):
        with pytest.raises(ValueError):
            coupling_heatmap_fixed_user(zoomer_model, 0, [], [1])
        with pytest.raises(ValueError):
            coupling_heatmap_fixed_query(zoomer_model, 0, [0], [])

    def test_ascii_rendering(self):
        heatmap = np.array([[0.1, 0.9], [0.5, 0.5]])
        text = render_ascii_heatmap(heatmap, ["rowA", "rowB"], ["c1", "c2"])
        assert "rowA" in text and "0.90" in text

    def test_variation_of_degenerate_heatmap(self):
        assert heatmap_variation(np.ones((1, 3)))["mean_row_std"] == 0.0


class TestHarness:
    def test_format_table(self):
        rows = [{"model": "Zoomer", "auc": 0.72}, {"model": "HAN", "auc": 0.703}]
        table = format_table(rows, title="Table III")
        assert "Table III" in table
        assert "Zoomer" in table and "0.703" in table
        assert format_table([]) == "(no rows)"

    def test_experiment_result_roundtrip(self, tmp_path):
        result = ExperimentResult("tableX", "demo", rows=[{"a": 1}],
                                  paper_reference={"a": 2})
        result.add_row(a=3)
        paths = save_results([result], directory=str(tmp_path))
        assert os.path.exists(paths[0])
        loaded = load_result("tableX", directory=str(tmp_path))
        assert loaded.description == "demo"
        assert loaded.rows[-1]["a"] == 3
        assert load_result("missing", directory=str(tmp_path)) is None
