"""Tests for the graph builder, sharded store and feature store."""

import numpy as np
import pytest

from repro.graph import FeatureStore, GraphBuilder, HashPartitioner, ShardedGraphStore
from repro.graph.schema import EdgeType, NodeType, RelationSpec


def _builder(num_users=4, num_queries=3, num_items=6, dim=8):
    rng = np.random.default_rng(0)
    builder = GraphBuilder(feature_dim=dim)
    builder.set_node_features(NodeType.USER, rng.normal(size=(num_users, dim)))
    builder.set_node_features(NodeType.QUERY, rng.normal(size=(num_queries, dim)))
    builder.set_node_features(NodeType.ITEM, rng.normal(size=(num_items, dim)))
    return builder


class TestGraphBuilder:
    def test_session_edge_rules(self):
        builder = _builder()
        builder.add_session(user_id=0, query_id=1, clicked_items=[2, 3, 5])
        graph = builder.build()
        # user-search-query
        spec = RelationSpec(NodeType.USER, EdgeType.SEARCH, NodeType.QUERY)
        assert 1 in graph.relation(spec).neighbors(0)[0].tolist()
        # user-click-item for every clicked item
        spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        assert set(graph.relation(spec).neighbors(0)[0].tolist()) == {2, 3, 5}
        # query-click-item for every clicked item
        spec = RelationSpec(NodeType.QUERY, EdgeType.QUERY_CLICK, NodeType.ITEM)
        assert set(graph.relation(spec).neighbors(1)[0].tolist()) == {2, 3, 5}
        # session edges between adjacent clicks only
        spec = RelationSpec(NodeType.ITEM, EdgeType.SESSION, NodeType.ITEM)
        assert set(graph.relation(spec).neighbors(2)[0].tolist()) == {3}
        assert set(graph.relation(spec).neighbors(3)[0].tolist()) == {2, 5}

    def test_repeated_interactions_accumulate_weight(self):
        builder = _builder()
        builder.add_session(0, 1, [2])
        builder.add_session(0, 1, [2])
        graph = builder.build()
        spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        _, weights = graph.relation(spec).neighbors(0)
        assert weights.tolist() == [2.0]

    def test_add_sessions_bulk_and_counter(self):
        builder = _builder()
        builder.add_sessions([(0, 0, [1]), (1, 1, [2, 3])])
        assert builder.num_sessions == 2

    def test_invalid_session_weight(self):
        builder = _builder()
        with pytest.raises(ValueError):
            builder.add_session(0, 0, [1], weight=0.0)

    def test_similarity_edges_connect_same_category(self):
        builder = _builder(num_queries=4, num_items=6)
        builder.add_session(0, 0, [0])
        # Queries 0,1 and items 0,1 share tokens; query 2 / item 5 differ.
        query_terms = {0: [1, 2, 3, 4], 1: [1, 2, 3, 5], 2: [100, 101, 102],
                       3: [200, 201]}
        item_terms = {0: [1, 2, 3, 6], 1: [1, 2, 3, 4], 5: [300, 301, 302]}
        added = builder.add_similarity_edges(query_terms, item_terms,
                                             threshold=0.3)
        assert added > 0
        graph = builder.build()
        spec = RelationSpec(NodeType.QUERY, EdgeType.SIMILARITY, NodeType.ITEM)
        neighbors = graph.relation(spec).neighbors(0)[0].tolist()
        assert 1 in neighbors or 0 in neighbors

    def test_generic_weighted_edges(self):
        builder = _builder()
        builder.add_weighted_edges(NodeType.ITEM, EdgeType.SESSION, NodeType.ITEM,
                                   [(0, 1, 2.5)])
        graph = builder.build()
        spec = RelationSpec(NodeType.ITEM, EdgeType.SESSION, NodeType.ITEM)
        ids, weights = graph.relation(spec).neighbors(0)
        assert ids.tolist() == [1] and weights.tolist() == [2.5]

    def test_feature_dim_validation(self):
        builder = GraphBuilder(feature_dim=4)
        with pytest.raises(ValueError):
            builder.set_node_features(NodeType.USER, np.ones((3, 5)))


class TestPartitioning:
    def test_partitioner_covers_all_nodes(self):
        partitioner = HashPartitioner(num_shards=4)
        assignment = partitioner.partition("item", 100)
        total = sum(ids.size for ids in assignment.values())
        assert total == 100
        assert set(assignment) <= set(range(4))

    def test_partitioner_deterministic(self):
        p1 = HashPartitioner(4, seed=3)
        p2 = HashPartitioner(4, seed=3)
        assert [p1.shard_of("user", i) for i in range(20)] == \
            [p2.shard_of("user", i) for i in range(20)]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_sharded_store_routing_and_stats(self, tiny_graph):
        store = ShardedGraphStore(tiny_graph, num_shards=3, replication_factor=2)
        assert store.num_servers == 6
        for node_id in range(10):
            store.neighbors(NodeType.USER, node_id % tiny_graph.num_nodes["user"])
        assert sum(s.requests for s in store.server_stats()) == 10
        assert store.load_imbalance() >= 1.0
        assert store.storage_imbalance() >= 1.0

    def test_sharded_store_sample_neighbors(self, tiny_graph):
        store = ShardedGraphStore(tiny_graph, num_shards=2)
        spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        ids, _ = store.sample_neighbors(spec, 0, k=2,
                                        rng=np.random.default_rng(0))
        assert ids.size <= 2

    def test_replication_required_positive(self, tiny_graph):
        with pytest.raises(ValueError):
            ShardedGraphStore(tiny_graph, num_shards=2, replication_factor=0)


class TestFeatureStore:
    def test_dense_features_shape_and_norm(self):
        store = FeatureStore(dense_dim=8)
        store.add_categorical("item", "category", [0, 1, 0, 2])
        store.add_categorical("item", "brand", [5, 5, 6, 7])
        dense = store.dense_features("item")
        assert dense.shape == (4, 8)
        np.testing.assert_allclose(np.linalg.norm(dense, axis=1), 1.0, atol=1e-9)

    def test_same_category_nodes_are_similar(self):
        store = FeatureStore(dense_dim=16)
        store.add_categorical("item", "category", [0, 0, 1, 1])
        dense = store.dense_features("item")
        same = dense[0] @ dense[1]
        different = dense[0] @ dense[2]
        assert same > different

    def test_token_fields(self):
        store = FeatureStore(dense_dim=8)
        store.add_categorical("query", "category", [0, 1])
        store.add_tokens("query", "terms", [[1, 2, 3], [4, 5]])
        assert store.tokens("query", "terms", 0) == [1, 2, 3]
        assert set(store.fields("query")) == {"category", "terms"}
        assert store.dense_features("query").shape == (2, 8)

    def test_length_mismatch_rejected(self):
        store = FeatureStore()
        store.add_categorical("user", "gender", [0, 1, 0])
        with pytest.raises(ValueError):
            store.add_categorical("user", "level", [1, 2])

    def test_invalid_dense_dim(self):
        with pytest.raises(ValueError):
            FeatureStore(dense_dim=0)

    def test_num_nodes_default_zero(self):
        assert FeatureStore().num_nodes("unknown") == 0
