"""Tests for the synthetic dataset generators and split utilities."""

import numpy as np
import pytest

from repro.data import (
    SCALE_PRESETS,
    MovieLensConfig,
    SyntheticTaobaoConfig,
    generate_taobao_dataset,
    train_test_split_examples,
)
from repro.data.logs import ImpressionRecord, SearchSession
from repro.data.splits import examples_to_arrays
from repro.graph.schema import NodeType


class TestLogSchema:
    def test_search_session_tuples(self):
        session = SearchSession(user_id=1, query_id=2, clicked_items=(3, 4))
        assert session.num_clicks == 2
        assert session.as_tuples() == [(1, 2, 3), (1, 2, 4)]

    def test_search_session_validation(self):
        with pytest.raises(ValueError):
            SearchSession(user_id=-1, query_id=0, clicked_items=())

    def test_impression_validation(self):
        with pytest.raises(ValueError):
            ImpressionRecord(0, 0, 0, label=2)
        with pytest.raises(ValueError):
            ImpressionRecord(0, 0, 0, label=1, price=-1.0)


class TestTaobaoGenerator:
    def test_shapes_and_counts(self, tiny_dataset):
        config = tiny_dataset.config
        assert tiny_dataset.user_features.shape == (config.num_users,
                                                    config.feature_dim)
        assert tiny_dataset.query_features.shape[0] == config.num_queries
        assert tiny_dataset.item_features.shape[0] == config.num_items
        assert tiny_dataset.graph.num_nodes[NodeType.USER] == config.num_users
        assert tiny_dataset.num_edges > 0
        assert len(tiny_dataset.sessions) >= config.num_users

    def test_labels_and_prices(self, tiny_dataset):
        labels = {record.label for record in tiny_dataset.impressions}
        assert labels == {0, 1}
        assert all(record.price >= 0 for record in tiny_dataset.impressions)
        assert len(tiny_dataset.positives()) > 0

    def test_ids_within_range(self, tiny_dataset):
        config = tiny_dataset.config
        for record in tiny_dataset.impressions:
            assert 0 <= record.user_id < config.num_users
            assert 0 <= record.query_id < config.num_queries
            assert 0 <= record.item_id < config.num_items

    def test_category_coherence_of_clicks(self, tiny_dataset):
        """Most clicks under a query should share the query's category."""
        matches = 0
        total = 0
        for session in tiny_dataset.sessions:
            query_category = tiny_dataset.query_categories[session.query_id]
            for item in session.clicked_items:
                total += 1
                if tiny_dataset.item_categories[item] == query_category:
                    matches += 1
        assert total > 0
        # noise_click_prob is 0.25 so well over half the clicks should match.
        assert matches / total > 0.5

    def test_same_category_items_closer_in_feature_space(self, tiny_dataset):
        categories = tiny_dataset.item_categories
        features = tiny_dataset.item_features
        category = categories[0]
        same = np.where(categories == category)[0]
        other = np.where(categories != category)[0]
        if same.size >= 2 and other.size >= 1:
            same_sim = features[same[0]] @ features[same[1]]
            cross_sim = features[same[0]] @ features[other[0]]
            assert same_sim > cross_sim - 1.0  # loose: same category not worse by much

    def test_determinism_given_seed(self):
        config = SyntheticTaobaoConfig(num_users=10, num_queries=8, num_items=20,
                                       sessions_per_user=2, seed=42)
        first = generate_taobao_dataset(config)
        second = generate_taobao_dataset(SyntheticTaobaoConfig(
            num_users=10, num_queries=8, num_items=20, sessions_per_user=2,
            seed=42))
        np.testing.assert_allclose(first.item_features, second.item_features)
        assert len(first.sessions) == len(second.sessions)

    def test_scale_presets_increase_in_size(self):
        million = SCALE_PRESETS["million"]
        hundred = SCALE_PRESETS["hundred-million"]
        billion = SCALE_PRESETS["billion"]
        assert million.num_items < hundred.num_items < billion.num_items

    def test_scale_argument(self):
        dataset = generate_taobao_dataset(scale="million")
        assert dataset.config.num_users == SCALE_PRESETS["million"].num_users
        with pytest.raises(KeyError):
            generate_taobao_dataset(scale="galaxy")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticTaobaoConfig(num_users=0).validate()
        with pytest.raises(ValueError):
            SyntheticTaobaoConfig(noise_click_prob=2.0).validate()
        with pytest.raises(ValueError):
            SyntheticTaobaoConfig(num_categories=1).validate()

    def test_items_in_category_helper(self, tiny_dataset):
        items = tiny_dataset.items_in_category(0)
        assert all(tiny_dataset.item_categories[i] == 0 for i in items)


class TestMovieLensGenerator:
    def test_schema_and_counts(self, tiny_movielens):
        config = tiny_movielens.config
        graph = tiny_movielens.graph
        assert graph.num_nodes[NodeType.MOVIE] == config.num_movies
        assert graph.num_nodes[NodeType.TAG] == config.num_tags
        assert graph.num_nodes[NodeType.USER] == config.num_users
        assert len(tiny_movielens.examples) > 0
        assert tiny_movielens.ratings.shape[1] == 3

    def test_top_k_tags_per_movie(self, tiny_movielens):
        from repro.graph.schema import EdgeType, RelationSpec
        spec = RelationSpec(NodeType.MOVIE, EdgeType.RELEVANCE, NodeType.TAG)
        relation = tiny_movielens.graph.relation(spec)
        degrees = relation.degrees()
        assert degrees.max() <= tiny_movielens.config.tags_per_movie

    def test_labels_binary(self, tiny_movielens):
        assert {e.label for e in tiny_movielens.examples} <= {0, 1}
        assert any(e.label == 1 for e in tiny_movielens.examples)

    def test_ratings_in_valid_range(self, tiny_movielens):
        values = tiny_movielens.ratings[:, 2]
        assert values.min() >= 1.0 and values.max() <= 5.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MovieLensConfig(num_users=0).validate()
        with pytest.raises(ValueError):
            MovieLensConfig(num_genres=1).validate()


class TestSplits:
    def test_split_proportions(self, tiny_dataset):
        train, test = train_test_split_examples(tiny_dataset.impressions, 0.8,
                                                seed=1)
        total = len(tiny_dataset.impressions)
        assert len(train) + len(test) == total
        assert abs(len(train) / total - 0.8) < 0.02

    def test_split_no_overlap_and_determinism(self, tiny_dataset):
        train1, test1 = train_test_split_examples(tiny_dataset.impressions, 0.9,
                                                  seed=5)
        train2, test2 = train_test_split_examples(tiny_dataset.impressions, 0.9,
                                                  seed=5)
        assert train1 == train2 and test1 == test2

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split_examples([], 1.5)

    def test_empty_input(self):
        train, test = train_test_split_examples([], 0.9)
        assert train == [] and test == []

    def test_examples_to_arrays(self, tiny_dataset):
        users, queries, items, labels = examples_to_arrays(
            tiny_dataset.impressions[:10])
        assert users.shape == (10,)
        assert labels.dtype == np.float64
        empty = examples_to_arrays([])
        assert empty[0].size == 0
