"""Tests for the baseline model zoo: interface contract and distinct behaviour."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_BASELINES,
    MOVIELENS_BASELINES,
    SAMPLER_BASELINES,
    FGNNModel,
    GATModel,
    GCEGNNModel,
    GCNModel,
    GraphSAGEModel,
    HANModel,
    MCCFModel,
    PinnerSageModel,
    PinSageModel,
    PixieModel,
    STAMPModel,
)
from repro.graph.schema import NodeType
from repro.models.base import resolve_node_roles
from repro.ndarray import functional as F

ALL_MODEL_CLASSES = [GCNModel, GraphSAGEModel, GATModel, HANModel, PinSageModel,
                     PinnerSageModel, PixieModel, GCEGNNModel, FGNNModel,
                     STAMPModel, MCCFModel]


def _batch(dataset, n=6):
    records = dataset.impressions[:n] if hasattr(dataset, "impressions") \
        else dataset.examples[:n]
    return (np.array([r.user_id for r in records]),
            np.array([r.query_id for r in records]),
            np.array([r.item_id for r in records]),
            np.array([r.label for r in records], dtype=float))


class TestRoleResolution:
    def test_taobao_roles(self, tiny_graph):
        assert resolve_node_roles(tiny_graph) == (NodeType.USER, NodeType.QUERY,
                                                  NodeType.ITEM)

    def test_movielens_roles(self, tiny_movielens):
        assert resolve_node_roles(tiny_movielens.graph) == \
            (NodeType.USER, NodeType.TAG, NodeType.MOVIE)


class TestBaselineContract:
    @pytest.mark.parametrize("model_cls", ALL_MODEL_CLASSES)
    def test_forward_backward(self, tiny_graph, tiny_dataset, model_cls):
        model = model_cls(tiny_graph, embedding_dim=8, fanouts=(3, 2), seed=0)
        users, queries, items, labels = _batch(tiny_dataset)
        probs = model.forward_batch(users, queries, items)
        values = probs.numpy()
        assert values.shape == (6,)
        assert np.all((values >= 0) & (values <= 1))
        loss = F.binary_cross_entropy(probs, labels)
        loss.backward()
        assert any(p.grad is not None for p in model.parameters())

    @pytest.mark.parametrize("model_cls", ALL_MODEL_CLASSES)
    def test_retrieval_interface(self, tiny_graph, model_cls):
        model = model_cls(tiny_graph, embedding_dim=8, fanouts=(2, 2), seed=0)
        request = model.request_embedding(0, 1)
        item = model.item_embedding(0)
        assert request.shape == (8,)
        assert item.shape == (8,)
        scores = model.score_items(0, 1, [0, 1, 2])
        assert scores.shape == (3,)

    @pytest.mark.parametrize("model_cls", [GCEGNNModel, FGNNModel, STAMPModel,
                                           MCCFModel, HANModel])
    def test_movielens_compatibility(self, tiny_movielens, model_cls):
        model = model_cls(tiny_movielens.graph, embedding_dim=8, fanouts=(2, 2),
                          seed=0)
        users, queries, items, _ = _batch(tiny_movielens)
        probs = model.forward_batch(users, queries, items)
        assert probs.shape == (6,)

    def test_registries_consistent(self):
        assert set(MOVIELENS_BASELINES) <= set(ALL_BASELINES)
        assert set(SAMPLER_BASELINES) <= set(ALL_BASELINES)
        assert len(ALL_BASELINES) == 9

    def test_model_names_distinct(self, tiny_graph):
        names = {cls(tiny_graph, embedding_dim=8, fanouts=(2,), seed=0).name
                 for cls in ALL_MODEL_CLASSES}
        assert len(names) == len(ALL_MODEL_CLASSES)


class TestSamplerChoices:
    def test_samplers_match_papers(self, tiny_graph):
        from repro.sampling import (ClusterNeighborSampler,
                                    ImportanceNeighborSampler,
                                    RandomWalkSampler, UniformNeighborSampler)
        assert isinstance(GraphSAGEModel(tiny_graph, embedding_dim=8).sampler,
                          UniformNeighborSampler)
        assert isinstance(PinSageModel(tiny_graph, embedding_dim=8).sampler,
                          ImportanceNeighborSampler)
        assert isinstance(PinnerSageModel(tiny_graph, embedding_dim=8).sampler,
                          ClusterNeighborSampler)
        assert isinstance(PixieModel(tiny_graph, embedding_dim=8).sampler,
                          RandomWalkSampler)

    def test_tree_cache_reused(self, tiny_graph):
        model = GraphSAGEModel(tiny_graph, embedding_dim=8, fanouts=(2, 2))
        tree_a = model.sampled_tree(NodeType.USER, 0)
        tree_b = model.sampled_tree(NodeType.USER, 0)
        assert tree_a is tree_b
        model.clear_tree_cache()
        assert model.sampled_tree(NodeType.USER, 0) is not tree_a

    def test_fanout_controls_tree_size(self, tiny_graph):
        small = GraphSAGEModel(tiny_graph, embedding_dim=8, fanouts=(2,), seed=0)
        large = GraphSAGEModel(tiny_graph, embedding_dim=8, fanouts=(8,), seed=0)
        user = 0
        assert small.sampled_tree(NodeType.USER, user).num_nodes() <= \
            large.sampled_tree(NodeType.USER, user).num_nodes()


class TestSessionBaselines:
    def test_stamp_cold_user_fallback(self, tiny_graph):
        """A user with no click history must still get a representation."""
        model = STAMPModel(tiny_graph, embedding_dim=8)
        # Find (or assume) a user id; even with history the call must work.
        representation = model.request_representation(0, 0)
        assert representation.shape == (16,)

    def test_mccf_component_count_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            MCCFModel(tiny_graph, embedding_dim=8, num_components=0)

    def test_neighbor_history_sorted_by_weight(self, tiny_graph):
        model = STAMPModel(tiny_graph, embedding_dim=8)
        ids, weights = model.neighbor_history(NodeType.USER, 0, NodeType.ITEM,
                                              limit=10)
        if weights.size >= 2:
            assert np.all(np.diff(weights) <= 0)
        assert ids.size == weights.size
