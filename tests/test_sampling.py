"""Tests for the neighbor samplers and the focal relevance score (Eq. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.graph.schema import NodeType
from repro.sampling import (
    ClusterNeighborSampler,
    FocalBiasedSampler,
    ImportanceNeighborSampler,
    RandomWalkSampler,
    UniformNeighborSampler,
    focal_relevance_scores,
)
from repro.sampling.base import SampledNode


ALL_SAMPLERS = [
    UniformNeighborSampler,
    ImportanceNeighborSampler,
    RandomWalkSampler,
    ClusterNeighborSampler,
    FocalBiasedSampler,
]


class TestSampledNode:
    def test_tree_counters(self):
        from repro.graph.schema import RelationSpec
        root = SampledNode("user", 0)
        spec = RelationSpec("user", "click", "item")
        child = SampledNode("item", 1)
        grandchild = SampledNode("item", 2)
        child.add_child(spec, grandchild, 1.0)
        root.add_child(spec, child, 2.0)
        assert root.num_nodes() == 3
        assert root.num_edges() == 2
        assert root.depth() == 2
        assert root.node_ids_by_type() == {"user": [0], "item": [1, 2]}
        assert list(root.children_by_type()) == ["item"]
        assert len(list(root.iter_nodes())) == 3


class TestSamplerContract:
    @pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
    def test_respects_fanout(self, tiny_graph, tiny_dataset, sampler_cls):
        sampler = sampler_cls(seed=0)
        focal = tiny_dataset.user_features[0] + tiny_dataset.query_features[0]
        tree = sampler.sample(tiny_graph, NodeType.USER, 0, fanouts=(3, 2),
                              focal_vector=focal)
        assert tree.node_type == NodeType.USER and tree.node_id == 0
        assert len(tree.children) <= 3
        for _, child, _ in tree.children:
            assert len(child.children) <= 2
        assert tree.depth() <= 2

    @pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
    def test_children_are_real_nodes(self, tiny_graph, tiny_dataset, sampler_cls):
        sampler = sampler_cls(seed=1)
        focal = tiny_dataset.user_features[1] + tiny_dataset.query_features[1]
        tree = sampler.sample(tiny_graph, NodeType.QUERY, 1, fanouts=(4,),
                              focal_vector=focal)
        for spec, child, _ in tree.children:
            assert child.node_type == spec.dst_type
            assert 0 <= child.node_id < tiny_graph.num_nodes[child.node_type]

    @pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
    def test_isolated_node_gives_empty_tree(self, sampler_cls):
        from repro.graph.hetero_graph import HeteroGraph
        from repro.graph.schema import taobao_schema
        graph = HeteroGraph(taobao_schema(feature_dim=4))
        graph.add_nodes(NodeType.USER, np.ones((1, 4)))
        graph.add_nodes(NodeType.QUERY, np.ones((1, 4)))
        graph.add_nodes(NodeType.ITEM, np.ones((1, 4)))
        graph.finalize()
        sampler = sampler_cls(seed=0)
        tree = sampler.sample(graph, NodeType.USER, 0, fanouts=(3,),
                              focal_vector=np.ones(4))
        assert tree.num_nodes() == 1

    def test_invalid_fanout_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            UniformNeighborSampler().sample(tiny_graph, NodeType.USER, 0, (0,))

    def test_sample_batch(self, tiny_graph, tiny_dataset):
        sampler = UniformNeighborSampler(seed=0)
        trees = sampler.sample_batch(tiny_graph, NodeType.USER, [0, 1, 2], (2,))
        assert len(trees) == 3


class TestImportanceSampler:
    def test_prefers_heavy_edges(self, tiny_graph):
        sampler = ImportanceNeighborSampler(seed=0)
        root = SampledNode(NodeType.USER, 0)
        all_neighbors = sampler._typed_neighbors(tiny_graph, root)
        total = sum(ids.size for _, ids, _ in all_neighbors)
        if total > 3:
            picks = sampler.select_neighbors(tiny_graph, root, 3, None)
            assert len(picks) == 3


class TestRandomWalkSampler:
    def test_visit_counts_positive(self, tiny_graph):
        sampler = RandomWalkSampler(seed=0, num_walks=10, walk_length=3)
        root = SampledNode(NodeType.USER, 0)
        picks = sampler.select_neighbors(tiny_graph, root, 5, None)
        assert all(weight >= 1 for _, _, weight in picks)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWalkSampler(num_walks=0)
        with pytest.raises(ValueError):
            RandomWalkSampler(restart_prob=1.5)


class TestClusterSampler:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ClusterNeighborSampler(num_clusters=0)

    def test_selection_size(self, tiny_graph):
        sampler = ClusterNeighborSampler(seed=0, num_clusters=2)
        root = SampledNode(NodeType.USER, 0)
        picks = sampler.select_neighbors(tiny_graph, root, 4, None)
        assert len(picks) <= 4


class TestFocalRelevance:
    def test_eq5_formula(self):
        focal = np.array([1.0, 0.0])
        neighbors = np.array([[1.0, 0.0], [0.0, 1.0]])
        scores = focal_relevance_scores(focal, neighbors)
        # Identical vector: dot=1, denom=1+1-1=1 -> score 1.
        assert scores[0] == pytest.approx(1.0)
        # Orthogonal vector: dot=0 -> score 0.
        assert scores[1] == pytest.approx(0.0)

    def test_cosine_metric(self):
        focal = np.array([2.0, 0.0])
        neighbors = np.array([[5.0, 0.0], [0.0, 3.0]])
        scores = focal_relevance_scores(focal, neighbors, metric="cosine")
        assert scores[0] == pytest.approx(1.0)
        assert scores[1] == pytest.approx(0.0, abs=1e-9)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            focal_relevance_scores(np.ones(2), np.ones((1, 2)), metric="bogus")

    @given(arrays(np.float64, (4,), elements=st.floats(-3, 3)),
           arrays(np.float64, (5, 4), elements=st.floats(-3, 3)))
    @settings(max_examples=40, deadline=None)
    def test_more_similar_neighbors_score_higher(self, focal, neighbors):
        """A neighbor equal to the focal vector scores at least as high as any other."""
        if np.linalg.norm(focal) < 1e-6:
            return
        augmented = np.vstack([neighbors, focal])
        scores = focal_relevance_scores(focal, augmented)
        assert scores[-1] == pytest.approx(scores.max(), abs=1e-9)


class TestFocalBiasedSampler:
    def test_top_k_property(self, tiny_graph, tiny_dataset):
        """The sampled neighbors must be exactly the k highest-scoring ones."""
        sampler = FocalBiasedSampler(seed=0)
        focal = tiny_dataset.user_features[0] + tiny_dataset.query_features[0]
        user_id = 0
        all_scored = sampler.score_neighbors(tiny_graph, NodeType.USER, user_id,
                                             focal)
        if len(all_scored) < 4:
            pytest.skip("ego node has too few neighbors for this check")
        k = 3
        tree = sampler.sample(tiny_graph, NodeType.USER, user_id, fanouts=(k,),
                              focal_vector=focal)
        chosen_scores = sorted((w for _, _, w in tree.children), reverse=True)
        best_scores = sorted((s for _, _, s in all_scored), reverse=True)[:k]
        np.testing.assert_allclose(chosen_scores, best_scores, atol=1e-9)

    def test_min_relevance_floor(self, tiny_graph, tiny_dataset):
        sampler = FocalBiasedSampler(seed=0, min_relevance=10.0)  # impossible bar
        focal = tiny_dataset.user_features[0] + tiny_dataset.query_features[0]
        tree = sampler.sample(tiny_graph, NodeType.USER, 0, (5,), focal)
        assert len(tree.children) == 0

    def test_fallback_uniform_without_focal(self, tiny_graph):
        sampler = FocalBiasedSampler(seed=0, fallback_uniform=True)
        tree = sampler.sample(tiny_graph, NodeType.USER, 0, (3,), None)
        assert len(tree.children) <= 3

    def test_requires_focal_when_no_fallback(self, tiny_graph):
        sampler = FocalBiasedSampler(seed=0, fallback_uniform=False)
        with pytest.raises(ValueError):
            sampler.sample(tiny_graph, NodeType.USER, 0, (3,), None)

    def test_different_focals_can_give_different_rois(self, tiny_graph,
                                                      tiny_dataset):
        sampler = FocalBiasedSampler(seed=0)
        user_id = int(np.argmax([tiny_graph.degree(NodeType.USER, u)
                                 for u in range(tiny_dataset.config.num_users)]))
        focal_a = tiny_dataset.user_features[user_id] + tiny_dataset.query_features[0]
        focal_b = tiny_dataset.user_features[user_id] + tiny_dataset.query_features[1]
        tree_a = sampler.sample(tiny_graph, NodeType.USER, user_id, (3,), focal_a)
        tree_b = sampler.sample(tiny_graph, NodeType.USER, user_id, (3,), focal_b)
        ids_a = [(c.node_type, c.node_id) for _, c, _ in tree_a.children]
        ids_b = [(c.node_type, c.node_id) for _, c, _ in tree_b.children]
        # Not asserting inequality strictly (they may coincide), but the
        # weights must reflect the different focal vectors.
        weights_a = [w for _, _, w in tree_a.children]
        weights_b = [w for _, _, w in tree_b.children]
        assert ids_a != ids_b or not np.allclose(weights_a, weights_b)

    def test_invalid_metric_rejected(self):
        with pytest.raises(ValueError):
            FocalBiasedSampler(metric="bogus")
