"""Streaming-update subsystem tests: graph mutation through serving refresh.

Covers the contract chain end to end:

* scoped :meth:`BatchedAliasTable.rebuilt` is bit-identical to a full build,
* :meth:`Relation.apply_updates` re-packs to exactly the CSR a from-scratch
  build of the concatenated edge list produces,
* :meth:`HeteroGraph.apply_updates` makes new edges/nodes visible to the
  sampling engine, stamps versions, and reports precise deltas,
* the **static path stays bit-identical**: applying zero updates leaves
  sampling and serving outputs byte-for-byte unchanged under a fixed seed,
* :class:`NeighborCache` / :class:`InvertedIndex` invalidate exactly the
  touched keys (post-update results for touched keys, still-cached results
  for untouched keys, no-op on empty updates),
* :meth:`OnlineServer.refresh`, :meth:`Pipeline.ingest`, and the
  timestamp-ordered :class:`ReplayDriver` compose the layers.
"""

import numpy as np
import pytest

from repro.api import (
    DataSpec,
    ExperimentSpec,
    Pipeline,
    StreamingSpec,
    TrainSpec,
)
from repro.data import SearchSession, sessions_in_time_order, split_sessions_at
from repro.graph import (
    GraphMutator,
    GraphUpdate,
    HeteroGraph,
    ShardedGraphStore,
)
from repro.graph.alias import BatchedAliasTable
from repro.graph.hetero_graph import Relation
from repro.graph.schema import EdgeType, NodeType, RelationSpec, taobao_schema
from repro.serving.cache import NeighborCache
from repro.serving.inverted_index import InvertedIndex
from repro.streaming import ReplayDriver


def _unit_rows(rng, count, dim=8):
    rows = rng.normal(size=(count, dim))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def _unique_pairs(rng, count, num_src, num_dst):
    """Sample ``count`` distinct ``(src, dst)`` pairs (no parallel edges)."""
    flat = rng.choice(num_src * num_dst, size=count, replace=False)
    return flat // num_dst, flat % num_dst


def _small_graph(seed=0, num_users=12, num_queries=10, num_items=24):
    rng = np.random.default_rng(seed)
    graph = HeteroGraph(taobao_schema(feature_dim=8))
    graph.add_nodes(NodeType.USER, _unit_rows(rng, num_users))
    graph.add_nodes(NodeType.QUERY, _unit_rows(rng, num_queries))
    graph.add_nodes(NodeType.ITEM, _unit_rows(rng, num_items))
    click = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
    search = RelationSpec(NodeType.USER, EdgeType.SEARCH, NodeType.QUERY)
    click_src, click_dst = _unique_pairs(rng, 60, num_users, num_items)
    graph.add_edges(click, click_src, click_dst, rng.random(60) + 0.1,
                    symmetric=True)
    search_src, search_dst = _unique_pairs(rng, 30, num_users, num_queries)
    graph.add_edges(search, search_src, search_dst, rng.random(30) + 0.1,
                    symmetric=True)
    return graph.finalize()


def _accumulated(src, dst, weights):
    """Fold duplicate ``(src, dst)`` pairs (first-occurrence order, summed)."""
    totals = {}
    order = []
    for s, d, w in zip(src, dst, weights):
        key = (int(s), int(d))
        if key not in totals:
            totals[key] = 0.0
            order.append(key)
        totals[key] += float(w)
    return (np.array([k[0] for k in order], dtype=np.int64),
            np.array([k[1] for k in order], dtype=np.int64),
            np.array([totals[k] for k in order]))


def _tiny_spec(**streaming):
    return ExperimentSpec(
        dataset=DataSpec(params={"num_users": 25, "num_queries": 20,
                                 "num_items": 50, "sessions_per_user": 4.0},
                         max_train_examples=120, max_test_examples=0),
        training=TrainSpec(epochs=1, max_batches_per_epoch=3, batch_size=64),
        streaming=StreamingSpec(**streaming) if streaming else StreamingSpec())


class TestScopedAliasRebuild:
    def _random_csr(self, rng, num_rows=80, max_degree=7):
        degrees = rng.integers(0, max_degree, size=num_rows)
        indptr = np.concatenate(([0], np.cumsum(degrees))).astype(np.int64)
        weights = rng.random(int(indptr[-1]))
        return indptr, weights

    def _append(self, rng, indptr, weights, touched, extra=2):
        num_rows = indptr.size - 1
        added = np.zeros(num_rows, dtype=np.int64)
        added[touched] = rng.integers(1, extra + 1, size=touched.size)
        new_indptr = np.concatenate(
            ([0], np.cumsum(np.diff(indptr) + added))).astype(np.int64)
        new_weights = np.empty(int(new_indptr[-1]))
        for row in range(num_rows):
            segment = np.concatenate([weights[indptr[row]:indptr[row + 1]],
                                      rng.random(added[row])])
            new_weights[new_indptr[row]:new_indptr[row + 1]] = segment
        return new_indptr, new_weights

    def test_scoped_rebuild_is_bit_identical_to_full(self):
        rng = np.random.default_rng(1)
        for trial in range(5):
            indptr, weights = self._random_csr(rng)
            base = BatchedAliasTable(indptr, weights)
            touched = np.sort(rng.choice(indptr.size - 1, size=6,
                                         replace=False))
            new_indptr, new_weights = self._append(rng, indptr, weights,
                                                   touched)
            scoped = base.rebuilt(new_indptr, new_weights, touched)
            full = BatchedAliasTable(new_indptr, new_weights)
            np.testing.assert_array_equal(scoped._prob, full._prob)
            np.testing.assert_array_equal(scoped._alias, full._alias)

    def test_new_rows_are_rebuilt_implicitly(self):
        rng = np.random.default_rng(2)
        indptr, weights = self._random_csr(rng, num_rows=20)
        base = BatchedAliasTable(indptr, weights)
        extra_weights = rng.random(5)
        grown_indptr = np.concatenate(
            [indptr, [indptr[-1] + 2, indptr[-1] + 5]])
        grown_weights = np.concatenate([weights, extra_weights])
        scoped = base.rebuilt(grown_indptr, grown_weights,
                              np.empty(0, dtype=np.int64))
        full = BatchedAliasTable(grown_indptr, grown_weights)
        np.testing.assert_array_equal(scoped._prob, full._prob)
        np.testing.assert_array_equal(scoped._alias, full._alias)

    def test_untouched_degree_change_raises(self):
        rng = np.random.default_rng(3)
        indptr, weights = self._random_csr(rng, num_rows=10)
        base = BatchedAliasTable(indptr, weights)
        new_indptr, new_weights = self._append(rng, indptr, weights,
                                               np.array([4]))
        with pytest.raises(ValueError, match="touched_rows"):
            base.rebuilt(new_indptr, new_weights, np.empty(0, dtype=np.int64))

    def test_row_space_cannot_shrink(self):
        base = BatchedAliasTable(np.array([0, 2, 4]), np.ones(4))
        with pytest.raises(ValueError, match="shrink"):
            base.rebuilt(np.array([0, 2]), np.ones(2), np.array([0]))


class TestRelationApplyUpdates:
    def test_append_matches_from_scratch_build(self):
        rng = np.random.default_rng(4)
        spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        src, dst = _unique_pairs(rng, 100, 30, 50)
        weights = rng.random(100) + 0.1
        new_src = rng.integers(0, 30, 15)
        new_dst = rng.integers(0, 50, 15)
        new_weights = rng.random(15) + 0.1

        streamed = Relation(spec, 30, src, dst, weights)
        streamed.alias_sampler()            # force the scoped-rebuild path
        touched = streamed.apply_updates(new_src, new_dst, new_weights)
        rebuilt = Relation(spec, 30, *_accumulated(
            np.concatenate([src, new_src]),
            np.concatenate([dst, new_dst]),
            np.concatenate([weights, new_weights])))
        np.testing.assert_array_equal(streamed.indptr, rebuilt.indptr)
        np.testing.assert_array_equal(streamed.indices, rebuilt.indices)
        np.testing.assert_array_equal(streamed.weights, rebuilt.weights)
        np.testing.assert_array_equal(
            streamed.alias_sampler()._prob, rebuilt.alias_sampler()._prob)
        np.testing.assert_array_equal(
            streamed.alias_sampler()._alias, rebuilt.alias_sampler()._alias)
        np.testing.assert_array_equal(touched, np.unique(new_src))
        # Identical sampling state => identical draws under a fixed seed.
        batch_a = streamed.sample_neighbors_batch(
            np.arange(30), 4, rng=np.random.default_rng(9))
        batch_b = rebuilt.sample_neighbors_batch(
            np.arange(30), 4, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(batch_a.ids, batch_b.ids)
        np.testing.assert_array_equal(batch_a.weights, batch_b.weights)

    def test_repeated_pairs_accumulate_weight_like_the_builder(self):
        """Re-streamed interactions strengthen the edge, never stack copies."""
        spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        relation = Relation(spec, 4, np.array([0, 0, 1]),
                            np.array([2, 3, 2]), np.array([1.0, 1.0, 1.0]))
        relation.alias_sampler()
        touched = relation.apply_updates(
            np.array([0, 0, 0, 2]), np.array([2, 2, 5, 7]),
            np.array([1.0, 1.0, 1.0, 1.0]))
        np.testing.assert_array_equal(touched, [0, 2])
        # Row 0: existing (0, 2) bumped twice, (0, 5) appended once.
        ids, weights = relation.neighbors(0)
        np.testing.assert_array_equal(ids, [2, 3, 5])
        np.testing.assert_array_equal(weights, [3.0, 1.0, 1.0])
        assert relation.degree(0) == 3
        ids, weights = relation.neighbors(2)
        np.testing.assert_array_equal(ids, [7])

    def test_pure_row_growth(self):
        spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        relation = Relation(spec, 5, np.array([0, 2]), np.array([1, 3]),
                            np.ones(2))
        touched = relation.apply_updates(np.empty(0, dtype=np.int64),
                                         np.empty(0, dtype=np.int64),
                                         np.empty(0), num_src=8)
        assert touched.size == 0
        assert relation.num_src == 8
        assert relation.indptr.size == 9
        assert relation.degree(7) == 0

    def test_src_out_of_range_raises(self):
        spec = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        relation = Relation(spec, 5, np.array([0]), np.array([0]), np.ones(1))
        with pytest.raises(IndexError):
            relation.apply_updates(np.array([9]), np.array([0]), np.ones(1))


class TestHeteroGraphApplyUpdates:
    def test_new_edges_visible_to_sampling(self):
        graph = _small_graph()
        click = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        # Force-build the union adjacency + alias caches first, so the test
        # exercises the scoped refresh (not a lazy rebuild).
        graph.sample_subgraph_batch(NodeType.USER, [0, 1], (4, 2),
                                    rng=np.random.default_rng(0))
        update = GraphUpdate().add_edges(click, [0, 0, 0], [20, 21, 22],
                                         [5.0, 5.0, 5.0])
        delta = graph.apply_updates(update)
        assert delta.version == graph.version == 1
        np.testing.assert_array_equal(delta.touched_ids(NodeType.USER), [0])
        batch = graph.sample_neighbors_batch(click, [0], 100,
                                             rng=np.random.default_rng(1))
        assert {20, 21, 22} <= set(batch.row(0)[0].tolist())
        union = graph.sample_neighbors_batch(NodeType.USER, [0], 200,
                                             rng=np.random.default_rng(1))
        assert {20, 21, 22} <= set(union.row(0)[0].tolist())

    def test_new_nodes_and_new_relation(self):
        graph = _small_graph()
        rng = np.random.default_rng(5)
        update = GraphUpdate()
        update.add_nodes(NodeType.ITEM, _unit_rows(rng, 3))
        spec = RelationSpec(NodeType.ITEM, "copurchase", NodeType.ITEM)
        update.add_edges(spec, [24, 25], [25, 26], symmetric=False)
        delta = graph.apply_updates(update)
        assert graph.num_nodes[NodeType.ITEM] == 27
        np.testing.assert_array_equal(delta.added_ids(NodeType.ITEM),
                                      [24, 25, 26])
        assert spec in graph.relations
        ids, _ = graph.relation(spec).neighbors(24)
        np.testing.assert_array_equal(ids, [25])
        # Every item-sourced relation covers the new row space.
        for rel_spec, relation in graph.relations.items():
            assert relation.indptr.size == \
                graph.num_nodes[rel_spec.src_type] + 1

    def test_empty_update_is_noop_and_bit_identical(self):
        baseline = _small_graph()
        updated = _small_graph()
        expected = baseline.sample_subgraph_batch(
            NodeType.USER, np.arange(6), (4, 2),
            rng=np.random.default_rng(7))
        delta = updated.apply_updates(GraphUpdate())
        assert delta.is_empty()
        assert updated.version == 0
        actual = updated.sample_subgraph_batch(
            NodeType.USER, np.arange(6), (4, 2),
            rng=np.random.default_rng(7))
        assert len(expected.layers) == len(actual.layers)
        for left, right in zip(expected.layers, actual.layers):
            np.testing.assert_array_equal(left.node_ids, right.node_ids)
            np.testing.assert_array_equal(left.parents, right.parents)
            np.testing.assert_array_equal(left.rel_ids, right.rel_ids)
            np.testing.assert_array_equal(left.weights, right.weights)

    def test_invalid_update_is_rejected_atomically(self):
        """A bad id anywhere in the update must leave nothing mutated."""
        graph = _small_graph()
        graph.typed_adjacency(NodeType.USER).alias_sampler()
        click = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        search = RelationSpec(NodeType.USER, EdgeType.SEARCH, NodeType.QUERY)
        degrees_before = np.diff(graph.relations[click].indptr).copy()
        bad = GraphUpdate()
        bad.add_edges(click, [0], [1])            # valid first relation
        bad.add_edges(search, [0], [999])         # out-of-range dst later
        with pytest.raises(IndexError, match="out of range"):
            graph.apply_updates(bad)
        assert graph.version == 0
        np.testing.assert_array_equal(
            np.diff(graph.relations[click].indptr), degrees_before)
        # The graph is still fully consistent: a valid update then sampling.
        graph.apply_updates(GraphUpdate().add_edges(click, [0], [1]))
        graph.sample_subgraph_batch(NodeType.USER, [0], (3,),
                                    rng=np.random.default_rng(0))

    def test_new_edge_count_reconciles_with_total_edges(self):
        """Folded repeat interactions must not inflate the appended count."""
        graph = _small_graph()
        mutator = GraphMutator(graph, seed=0)
        session = (0, 0, [1, 2])
        before = graph.total_edges
        first = mutator.apply_sessions([session])
        assert graph.total_edges - before == first.num_new_edges
        before = graph.total_edges
        repeat = mutator.apply_sessions([session])   # pure weight bumps
        assert repeat.num_new_edges == 0
        assert graph.total_edges == before
        assert repeat.touched_ids(NodeType.USER).size  # still invalidates

    def test_incremental_equals_from_scratch_graph(self):
        """Streaming edges in matches building the graph with them upfront."""
        rng = np.random.default_rng(8)
        click = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        extra_src = rng.integers(0, 12, 10)
        extra_dst = rng.integers(0, 24, 10)
        extra_w = rng.random(10) + 0.1

        streamed = _small_graph()
        streamed.typed_adjacency(NodeType.USER).alias_sampler()
        streamed.apply_updates(
            GraphUpdate().add_edges(click, extra_src, extra_dst, extra_w))

        scratch = _small_graph()
        # Rebuild the click relation from the accumulated edge list (the
        # builder's semantics: repeated pairs strengthen one edge).
        base = scratch.relations[click]
        merged = Relation(click, base.num_src, *_accumulated(
            np.concatenate([_edge_src(base), extra_src]),
            np.concatenate([base.indices.copy(), extra_dst]),
            np.concatenate([base.weights.copy(), extra_w])))
        np.testing.assert_array_equal(streamed.relations[click].indptr,
                                      merged.indptr)
        np.testing.assert_array_equal(streamed.relations[click].indices,
                                      merged.indices)
        np.testing.assert_array_equal(streamed.relations[click].weights,
                                      merged.weights)


def _edge_src(relation):
    """Recover the per-edge source ids of a CSR relation."""
    return np.repeat(np.arange(relation.num_src), np.diff(relation.indptr))


class TestShardedStoreUpdates:
    def test_shard_sizes_track_added_nodes(self):
        graph = _small_graph()
        store = ShardedGraphStore(graph, num_shards=3, replication_factor=2)
        before = sum(store.shard_sizes.values())
        rng = np.random.default_rng(9)
        update = GraphUpdate().add_nodes(NodeType.USER, _unit_rows(rng, 5))
        click = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        update.add_edges(click, [13, 14], [0, 1])
        delta = store.apply_updates(update)
        assert sum(store.shard_sizes.values()) == before + 5
        np.testing.assert_array_equal(delta.added_ids(NodeType.USER),
                                      [12, 13, 14, 15, 16])
        batch = store.sample_neighbors_batch(click, [13, 14], 3,
                                             rng=np.random.default_rng(0))
        assert batch.counts.tolist() == [1, 1]


class TestCacheInvalidationUnderUpdates:
    def test_touched_keys_dropped_untouched_still_cached(self):
        cache = NeighborCache(capacity=4)
        cache.put(NodeType.USER, 0, [(NodeType.ITEM, 1, 1.0)])
        cache.put(NodeType.USER, 1, [(NodeType.ITEM, 2, 1.0)])
        cache.put(NodeType.QUERY, 0, [(NodeType.ITEM, 3, 1.0)])
        dropped = cache.invalidate_keys([(NodeType.USER, 0),
                                        (NodeType.USER, 7)])
        assert dropped == 1
        assert cache.stats.invalidations == 1
        assert cache.get(NodeType.USER, 0) is None          # post-update miss
        assert cache.get(NodeType.USER, 1) == [(NodeType.ITEM, 2, 1.0)]
        assert cache.get(NodeType.QUERY, 0) == [(NodeType.ITEM, 3, 1.0)]

    def test_empty_update_leaves_cache_untouched(self):
        cache = NeighborCache()
        cache.put(NodeType.USER, 0, [(NodeType.ITEM, 1, 1.0)])
        assert cache.invalidate_keys([]) == 0
        assert cache.stats.invalidations == 0
        assert cache.get(NodeType.USER, 0) == [(NodeType.ITEM, 1, 1.0)]

    def test_cache_returns_post_update_results_for_touched_keys(self):
        graph = _small_graph()
        cache = NeighborCache(capacity=50)
        cache.warm(graph, NodeType.USER, [0, 1])
        before_untouched = cache.get(NodeType.USER, 1)
        click = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        delta = graph.apply_updates(
            GraphUpdate().add_edges(click, [0], [23], [99.0]))
        cache.invalidate_keys(list(delta.touched_keys()))
        assert cache.get(NodeType.USER, 0) is None
        cache.warm(graph, NodeType.USER, [0])               # re-warm on miss
        refreshed = cache.get(NodeType.USER, 0)
        # The new interaction dominates the entry (weight accumulates onto
        # the edge if the pair already existed).
        assert any(node_type == NodeType.ITEM and node_id == 23
                   and weight >= 99.0
                   for node_type, node_id, weight in refreshed)
        assert cache.get(NodeType.USER, 1) == before_untouched


class TestInvertedIndexInvalidation:
    def test_invalidate_exactly_the_touched_queries(self):
        index = InvertedIndex(posting_length=5)
        index.add_posting(0, [(1, 0.9), (2, 0.8)])
        index.add_posting(1, [(3, 0.7)])
        index.add_posting(2, [(4, 0.6)])
        assert index.invalidate_queries([0, 2, 99]) == 2
        assert not index.has_posting(0)
        assert not index.has_posting(2)
        assert index.has_posting(1)
        assert index.lookup(1) == [(3, 0.7)]
        assert index.invalidate_queries([]) == 0


class TestOnlineServerRefresh:
    @pytest.fixture(scope="class")
    def deployed(self):
        pipeline = Pipeline(_tiny_spec())
        server = pipeline.deploy()
        return pipeline, server

    def test_refresh_scopes_to_the_delta(self, deployed):
        pipeline, server = deployed
        untouched_query = 5
        posting_before = server.inverted_index.lookup(untouched_query, 5)
        mutator = GraphMutator(pipeline.graph, seed=11)
        # user 0 searches query 0 again, clicking a brand-new item.
        delta = mutator.apply_sessions([(0, 0, [50, 51])])
        report = server.refresh(delta)
        assert report.version == pipeline.graph.version
        assert report.new_items == 2
        assert report.refreshed_postings >= 1
        assert report.invalidated_cache_keys >= 1
        # Untouched query keeps serving its cached posting list.
        assert server.inverted_index.lookup(untouched_query, 5) \
            == posting_before
        # The item corpus (and ANN index) grew to cover the new items.
        assert server._item_embeddings.shape[0] == \
            pipeline.graph.num_nodes[server.item_type]
        # Touched keys re-warm to post-update neighborhoods on first read.
        result = server.serve(0, 0, k=5)
        assert result.item_ids.size
        cached = server.cache.get(NodeType.USER, 0)
        assert any(item_id in (50, 51) for _, item_id, _ in cached)

    def test_new_users_and_queries_are_servable(self, deployed):
        pipeline, server = deployed
        num_users = pipeline.graph.num_nodes[NodeType.USER]
        num_queries = pipeline.graph.num_nodes[NodeType.QUERY]
        mutator = GraphMutator(pipeline.graph, seed=12)
        delta = mutator.apply_sessions([(num_users, num_queries, [3, 4])])
        server.refresh(delta)
        result = server.serve(num_users, num_queries, k=5)
        assert result.item_ids.size

    def test_stale_delta_rejected(self, deployed):
        pipeline, server = deployed
        from repro.graph.update import GraphDelta
        with pytest.raises(ValueError, match="stale"):
            server.refresh(GraphDelta(version=server.graph_version - 1))


class TestStaticPathBitIdentity:
    def test_zero_updates_keep_serving_bit_identical(self):
        requests = [(0, 0), (1, 3), (2, 5), (0, 7)]
        baseline_server = Pipeline(_tiny_spec()).deploy()
        expected = baseline_server.serve_batch(requests, k=5)

        pipeline = Pipeline(_tiny_spec())
        server = pipeline.deploy()
        report = pipeline.ingest([])                 # zero events
        assert report.events == 0 and report.micro_batches == 0
        delta = pipeline.graph.apply_updates(GraphUpdate())
        server.refresh(delta)                        # empty refresh no-op
        actual = server.serve_batch(requests, k=5)

        for left, right in zip(expected, actual):
            np.testing.assert_array_equal(left.item_ids, right.item_ids)
            np.testing.assert_array_equal(left.scores, right.scores)
            assert left.from_inverted_index == right.from_inverted_index


class TestPipelineIngest:
    def test_streaming_spec_round_trips_and_validates(self):
        spec = _tiny_spec(micro_batch_size=7, refresh_every=3)
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone.streaming.micro_batch_size == 7
        assert clone.streaming.refresh_every == 3
        bad = _tiny_spec()
        bad.streaming.micro_batch_size = 0
        with pytest.raises(ValueError, match="micro_batch_size"):
            bad.validate()
        bad = _tiny_spec()
        bad.streaming.refresh_every = 0
        with pytest.raises(ValueError, match="refresh_every"):
            bad.validate()

    def test_ingest_without_server_grows_graph_only(self):
        pipeline = Pipeline(_tiny_spec(micro_batch_size=3))
        pipeline.build_graph()
        edges_before = pipeline.graph.total_edges
        report = pipeline.ingest([(0, 0, [1, 2]), (1, 1, [3]),
                                  (2, 2, [4]), (3, 3, [5])])
        assert report.events == 4
        assert report.micro_batches == 2       # 3 + 1
        assert report.refreshes == 0
        assert report.new_edges > 0
        assert pipeline.graph.total_edges > edges_before
        assert report.graph_version == pipeline.graph.version == 2

    def test_ingest_refreshes_on_cadence(self):
        pipeline = Pipeline(_tiny_spec(micro_batch_size=2, refresh_every=2))
        pipeline.deploy()
        sessions = [(u % 5, u % 4, [u % 10]) for u in range(10)]
        report = pipeline.ingest(sessions)
        assert report.micro_batches == 5
        # Refreshes at micro-batches 2 and 4, plus the trailing flush of the
        # fifth batch's pending delta.
        assert report.refreshes == 3
        assert pipeline.server.graph_version == pipeline.graph.version


class TestScopedAnnRebuild:
    def _corpus(self, rng, count=60, dim=8):
        rows = rng.normal(size=(count, dim))
        return rows / np.linalg.norm(rows, axis=1, keepdims=True)

    def test_no_changes_keeps_search_identical(self):
        from repro.serving.ann import IVFIndex
        rng = np.random.default_rng(20)
        corpus = self._corpus(rng)
        index = IVFIndex(num_cells=8, nprobe=3, seed=0).build(corpus)
        fresh = index.rebuilt(corpus, np.empty(0, dtype=np.int64))
        queries = self._corpus(rng, count=5)
        ids_a, scores_a = index.search_batch(queries, 5)
        ids_b, scores_b = fresh.search_batch(queries, 5)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_array_equal(scores_a, scores_b)

    def test_appended_items_are_retrievable(self):
        from repro.serving.ann import IVFIndex
        rng = np.random.default_rng(21)
        corpus = self._corpus(rng)
        index = IVFIndex(num_cells=8, nprobe=3, seed=0).build(corpus)
        grown = np.vstack([corpus, self._corpus(rng, count=4)])
        fresh = index.rebuilt(grown, np.empty(0, dtype=np.int64))
        # Querying a new item's own embedding must surface it: the item sits
        # in its nearest centroid's cell, which is always probed first.
        ids, _ = fresh.search(grown[62], 5)
        assert 62 in ids.tolist()
        # The serving index keeps working for old items too.
        ids, _ = fresh.search(corpus[3], 5)
        assert 3 in ids.tolist()

    def test_sharded_rebuilt_covers_new_items(self):
        from repro.serving.ann import IVFIndex
        from repro.serving.sharding import ShardedIndex
        rng = np.random.default_rng(22)
        corpus = self._corpus(rng)
        sharded = ShardedIndex(
            num_shards=3,
            index_factory=lambda emb, ids: IVFIndex(
                num_cells=4, nprobe=2, seed=0).build(emb, ids),
        ).build(corpus)
        grown = np.vstack([corpus, self._corpus(rng, count=5)])
        fresh = sharded.rebuilt(grown, np.empty(0, dtype=np.int64))
        assert len(fresh) == 65
        assert sum(fresh.shard_sizes) == 65
        ids, _ = fresh.search(grown[64], 5)
        assert 64 in ids.tolist()
        with pytest.raises(ValueError):
            fresh.rebuilt(corpus, np.empty(0, dtype=np.int64))  # shrink


class TestIngestBeforeDeploy:
    def test_fit_then_ingest_then_deploy(self):
        """A fitted-but-undeployed model must absorb streamed-in nodes."""
        pipeline = Pipeline(_tiny_spec(micro_batch_size=2))
        pipeline.fit()
        num_items = pipeline.graph.num_nodes[NodeType.ITEM]
        report = pipeline.ingest([(0, 0, [num_items]),
                                  (1, 1, [num_items + 1])])
        assert report.new_nodes.get(NodeType.ITEM) == 2
        server = pipeline.deploy()          # previously IndexError'd here
        result = server.serve(0, 0, k=5)
        assert result.item_ids.size
        assert server._item_embeddings.shape[0] == num_items + 2

    def test_training_continues_after_ingest(self):
        """The existing trainer keeps working after the graph grew."""
        pipeline = Pipeline(_tiny_spec())
        pipeline.fit()
        new_item = pipeline.graph.num_nodes[NodeType.ITEM]
        pipeline.ingest([(0, 0, [new_item])])
        result = pipeline.trainer.train(pipeline.train_examples[:32])
        assert result.iterations > 0

    def test_cold_start_embeddings_match_with_and_without_server(self):
        """Both ingest paths grow identical embeddings for the same stream."""
        events = [(0, 0, [50, 51]), (1, 1, [52])]

        fitted = Pipeline(_tiny_spec())
        fitted.fit()
        fitted.ingest(events)

        deployed = Pipeline(_tiny_spec())
        deployed.deploy()
        deployed.ingest(events)

        table_a = getattr(fitted.model.encoder,
                          f"id_embedding_{NodeType.ITEM}").weight.data
        table_b = getattr(deployed.model.encoder,
                          f"id_embedding_{NodeType.ITEM}").weight.data
        np.testing.assert_array_equal(table_a, table_b)

    def test_refresh_false_deltas_are_parked_not_dropped(self):
        """A later refreshing ingest hands the merged backlog to the server."""
        pipeline = Pipeline(_tiny_spec(micro_batch_size=8))
        server = pipeline.deploy()
        server.serve(0, 0, k=5)                     # cache user 0's entry
        assert server.cache.get(NodeType.USER, 0) is not None
        new_item = pipeline.graph.num_nodes[NodeType.ITEM]
        first = pipeline.ingest([(0, 0, [new_item])], refresh=False)
        assert first.refreshes == 0
        # The server has not seen the update yet; its caches may be stale.
        assert server.graph_version < pipeline.graph.version
        second = pipeline.ingest([(1, 1, [2])])
        assert second.refreshes == 1
        # The backlog delta was merged in: the server caught up past both
        # updates and user 0's touched cache entry was invalidated+rewarmed.
        assert server.graph_version == pipeline.graph.version
        assert server._item_embeddings.shape[0] == \
            pipeline.graph.num_nodes[NodeType.ITEM]
        server.cache.drain_refreshes()
        cached = server.cache.get(NodeType.USER, 0)
        assert any(item_id == new_item for _, item_id, _ in cached)


class TestReplayDriver:
    def test_replay_is_timestamp_ordered_and_deterministic(self):
        sessions = [SearchSession(user_id=u % 5, query_id=u % 4,
                                  clicked_items=(u % 10,),
                                  timestamp=float(10 - u))
                    for u in range(8)]
        ordered = sessions_in_time_order(sessions)
        assert [s.timestamp for s in ordered] == sorted(
            s.timestamp for s in sessions)

        first = Pipeline(_tiny_spec(micro_batch_size=3))
        first.build_graph()
        ReplayDriver(first).replay(sessions)

        second = Pipeline(_tiny_spec(micro_batch_size=3))
        second.build_graph()
        ReplayDriver(second).replay(list(reversed(sessions)))

        click = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
        np.testing.assert_array_equal(first.graph.relations[click].indices,
                                      second.graph.relations[click].indices)
        np.testing.assert_array_equal(first.graph.relations[click].weights,
                                      second.graph.relations[click].weights)

    def test_replay_report_wraps_ingest(self):
        pipeline = Pipeline(_tiny_spec(micro_batch_size=4))
        pipeline.build_graph()
        report = ReplayDriver(pipeline).replay(
            [(0, 0, [1]), (1, 1, [2]), (2, 2, [3])])
        assert report.ingest.events == 3
        assert report.seconds > 0
        assert report.events_per_second > 0

    def test_split_sessions_at(self):
        sessions = [SearchSession(user_id=0, query_id=0, clicked_items=(1,),
                                  timestamp=float(i)) for i in range(10)]
        warm, tail = split_sessions_at(list(reversed(sessions)), 0.7)
        assert len(warm) == 7 and len(tail) == 3
        assert max(s.timestamp for s in warm) < min(s.timestamp for s in tail)
        with pytest.raises(ValueError):
            split_sessions_at(sessions, 1.5)
