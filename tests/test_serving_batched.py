"""Regression-grade tests for the batched, sharded serving engine.

Four families of guarantees:

* **Equivalence** — ``search_batch`` exactly matches looped single-query
  ``search`` for every index type, and ``OnlineServer.serve_batch`` matches
  one-at-a-time ``serve`` (ids, scores, cache and index statistics deltas).
* **Quality regression** — ``IVFIndex`` recall@10 against ``ExactIndex`` on a
  fixed-seed corpus is pinned above a threshold so index changes cannot
  silently degrade retrieval.
* **Cache invariants** — randomized workloads never violate the per-node
  capacity, the ``max_nodes`` bound with least-recently-touched eviction, or
  ``hits + misses == lookups`` accounting; the async refresh queue applies
  exactly what was enqueued.
* **Edge cases** — k larger than the corpus or a shard, empty IVF cells,
  batch size one, the empty batch, and malformed query shapes.
"""

import numpy as np
import pytest

from repro.baselines import STAMPModel
from repro.serving import (
    BatchServiceProfile,
    ExactIndex,
    IVFIndex,
    LatencySimulator,
    NeighborCache,
    OnlineServer,
    RequestBatcher,
    ServeRequest,
    ShardedIndex,
    coerce_request,
    strip_padding,
)


def _corpus(n=200, d=8, seed=0):
    return np.random.default_rng(seed).normal(size=(n, d))


def _assert_rows_match_looped(index, queries, k):
    """search_batch rows must exactly equal the looped single-query search."""
    batch_ids, batch_scores = index.search_batch(queries, k)
    for row, query in enumerate(queries):
        row_ids, row_scores = strip_padding(batch_ids[row], batch_scores[row])
        single_ids, single_scores = index.search(query, k)
        np.testing.assert_array_equal(single_ids, row_ids)
        np.testing.assert_allclose(single_scores, row_scores)


class TestSearchBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_batched_matches_sequential(self, seed):
        embeddings = _corpus(seed=seed)
        queries = np.random.default_rng(100 + seed).normal(size=(13, 8))
        _assert_rows_match_looped(ExactIndex(embeddings), queries, k=10)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ivf_batched_matches_sequential(self, seed):
        embeddings = _corpus(seed=seed)
        queries = np.random.default_rng(200 + seed).normal(size=(13, 8))
        index = IVFIndex(num_cells=8, nprobe=3, seed=seed).build(embeddings)
        _assert_rows_match_looped(index, queries, k=10)

    @pytest.mark.parametrize("factory", [
        ExactIndex,
        lambda emb, ids: IVFIndex(num_cells=4, nprobe=2, seed=0).build(emb, ids),
    ], ids=["exact-shards", "ivf-shards"])
    def test_sharded_batched_matches_sequential(self, factory):
        embeddings = _corpus()
        queries = np.random.default_rng(7).normal(size=(9, 8))
        index = ShardedIndex(num_shards=4, index_factory=factory).build(embeddings)
        _assert_rows_match_looped(index, queries, k=10)

    def test_batch_of_one_matches_single(self):
        embeddings = _corpus()
        query = np.random.default_rng(3).normal(size=8)
        for index in (ExactIndex(embeddings),
                      IVFIndex(num_cells=8, nprobe=3).build(embeddings),
                      ShardedIndex(num_shards=3).build(embeddings)):
            batch_ids, batch_scores = index.search_batch(query[None, :], 10)
            single_ids, single_scores = index.search(query, 10)
            np.testing.assert_array_equal(
                single_ids, strip_padding(batch_ids[0], batch_scores[0])[0])
            np.testing.assert_allclose(single_scores,
                                       batch_scores[0][:single_scores.size])

    def test_batch_results_independent_of_batch_composition(self):
        """A query's row must not depend on what else is in the batch."""
        embeddings = _corpus()
        queries = np.random.default_rng(11).normal(size=(6, 8))
        index = IVFIndex(num_cells=8, nprobe=3).build(embeddings)
        full_ids, full_scores = index.search_batch(queries, 10)
        half_ids, half_scores = index.search_batch(queries[:3], 10)
        np.testing.assert_array_equal(full_ids[:3], half_ids)
        np.testing.assert_allclose(full_scores[:3], half_scores)


class TestSearchEdgeCases:
    def test_empty_query_batch(self):
        embeddings = _corpus()
        for index in (ExactIndex(embeddings),
                      IVFIndex(num_cells=4).build(embeddings),
                      ShardedIndex(num_shards=2).build(embeddings)):
            ids, scores = index.search_batch(np.zeros((0, 8)), 5)
            assert ids.shape == (0, 0) and scores.shape == (0, 0)

    def test_k_larger_than_corpus(self):
        embeddings = _corpus(n=12)
        ids, scores = ExactIndex(embeddings).search(np.ones(8), k=50)
        assert ids.shape == (12,)
        sharded_ids, _ = ShardedIndex(num_shards=3).build(embeddings).search(
            np.ones(8), k=50)
        assert sharded_ids.shape == (12,)
        assert set(sharded_ids) == set(ids)

    def test_k_larger_than_any_shard(self):
        """Per-shard top-k must still merge into the exact global top-k."""
        embeddings = _corpus(n=40)
        query = np.random.default_rng(5).normal(size=8)
        exact_ids, exact_scores = ExactIndex(embeddings).search(query, k=15)
        sharded = ShardedIndex(num_shards=8).build(embeddings)   # 5 items/shard
        sharded_ids, sharded_scores = sharded.search(query, k=15)
        np.testing.assert_array_equal(exact_ids, sharded_ids)
        np.testing.assert_allclose(exact_scores, sharded_scores)

    def test_k_zero_returns_empty(self):
        embeddings = _corpus(n=10)
        for index in (ExactIndex(embeddings),
                      IVFIndex(num_cells=2).build(embeddings)):
            ids, scores = index.search(np.ones(8), k=0)
            assert ids.size == 0 and scores.size == 0

    def test_ivf_short_rows_are_padded(self):
        """Queries probing small cells pad with (-1, -inf), stripped cleanly."""
        embeddings = _corpus(n=30)
        index = IVFIndex(num_cells=10, nprobe=1, seed=0).build(embeddings)
        ids, scores = index.search_batch(
            np.random.default_rng(1).normal(size=(8, 8)), k=25)
        padded = (ids == -1)
        assert np.isneginf(scores[padded]).all()
        for row in range(ids.shape[0]):
            row_ids, row_scores = strip_padding(ids[row], scores[row])
            assert (row_ids >= 0).all()
            assert np.all(np.diff(row_scores) <= 1e-12)

    def test_ivf_empty_cells_from_duplicate_points(self):
        """Duplicated points leave k-means cells empty; search must survive."""
        embeddings = np.ones((20, 4))
        index = IVFIndex(num_cells=6, nprobe=6, seed=0).build(embeddings)
        ids, scores = index.search(np.ones(4), k=5)
        assert ids.size == 5
        assert np.allclose(scores, 4.0)

    def test_one_dim_queries_rejected(self):
        index = ExactIndex(_corpus(n=10))
        with pytest.raises(ValueError):
            index.search_batch(np.ones(8), 3)

    def test_sharded_validation(self):
        with pytest.raises(ValueError):
            ShardedIndex(num_shards=0)
        with pytest.raises(ValueError):
            ShardedIndex(num_shards=2).build(np.zeros((0, 4)))
        with pytest.raises(RuntimeError):
            ShardedIndex(num_shards=2).search(np.ones(4), 3)


class TestShardedIndex:
    def test_round_robin_partition_is_balanced(self):
        index = ShardedIndex(num_shards=4).build(_corpus(n=11, d=4))
        assert len(index) == 11
        assert sorted(index.shard_sizes) == [2, 3, 3, 3]

    def test_exact_shards_merge_to_global_topk(self):
        embeddings = _corpus(n=120, d=6)
        queries = np.random.default_rng(9).normal(size=(10, 6))
        global_ids, global_scores = ExactIndex(embeddings).search_batch(queries, 8)
        merged_ids, merged_scores = ShardedIndex(num_shards=5).build(
            embeddings).search_batch(queries, 8)
        np.testing.assert_array_equal(global_ids, merged_ids)
        np.testing.assert_allclose(global_scores, merged_scores)

    def test_custom_ids_preserved(self):
        embeddings = _corpus(n=30, d=4)
        ids = np.arange(1000, 1030)
        index = ShardedIndex(num_shards=3).build(embeddings, ids)
        found, _ = index.search(embeddings[0], k=5)
        assert set(found) <= set(ids)


class TestRecallRegression:
    """Pin IVF recall@10 so index changes cannot silently degrade retrieval."""

    CORPUS_SEED = 42

    def _fixtures(self):
        rng = np.random.default_rng(self.CORPUS_SEED)
        return rng.normal(size=(400, 16)), rng.normal(size=(50, 16))

    def test_ivf_recall_at_10_above_threshold(self):
        embeddings, queries = self._fixtures()
        index = IVFIndex(num_cells=16, nprobe=4, seed=0).build(embeddings)
        recall = index.recall_at_k(queries, k=10)
        assert recall >= 0.60, f"IVF recall@10 regressed to {recall:.3f}"

    def test_more_probes_raise_recall_above_higher_bar(self):
        embeddings, queries = self._fixtures()
        index = IVFIndex(num_cells=16, nprobe=6, seed=0).build(embeddings)
        recall = index.recall_at_k(queries, k=10)
        assert recall >= 0.75, f"IVF recall@10 (nprobe=6) regressed to {recall:.3f}"

    def test_sharded_ivf_recall_not_below_unsharded_floor(self):
        embeddings, queries = self._fixtures()
        sharded = ShardedIndex(
            num_shards=4,
            index_factory=lambda emb, ids: IVFIndex(
                num_cells=4, nprobe=2, seed=0).build(emb, ids),
        ).build(embeddings)
        exact = ExactIndex(embeddings)
        recalls = []
        for query in queries:
            truth, _ = exact.search(query, 10)
            found, _ = sharded.search(query, 10)
            recalls.append(len(set(found) & set(truth)) / truth.size)
        assert float(np.mean(recalls)) >= 0.60


class TestNeighborCacheInvariants:
    """Property-style invariants over randomized cache workloads."""

    def _random_workload(self, cache, rng, operations=400):
        lookups = 0
        for _ in range(operations):
            node_type = rng.choice(["user", "query"])
            node_id = int(rng.integers(0, 40))
            op = rng.random()
            if op < 0.4:
                cache.get(node_type, node_id)
                lookups += 1
            elif op < 0.8:
                count = int(rng.integers(0, 12))
                cache.put(node_type, node_id,
                          [("item", int(rng.integers(0, 50)), float(rng.random()))
                           for _ in range(count)])
            else:
                cache.update_visit(node_type, node_id,
                                   ("item", int(rng.integers(0, 50)),
                                    float(rng.random())))
        return lookups

    def test_capacity_never_exceeded(self, rng):
        cache = NeighborCache(capacity=4, max_nodes=15)
        self._random_workload(cache, rng)
        for node_type in ("user", "query"):
            for node_id in range(40):
                entry = cache._entries.get((node_type, node_id))
                if entry is not None:
                    assert len(entry) <= 4

    def test_max_nodes_never_exceeded(self, rng):
        cache = NeighborCache(capacity=3, max_nodes=10)
        self._random_workload(cache, rng)
        assert len(cache) <= 10

    def test_hits_plus_misses_equals_lookups(self, rng):
        cache = NeighborCache(capacity=3, max_nodes=12)
        lookups = self._random_workload(cache, rng)
        assert cache.stats.hits + cache.stats.misses == lookups

    def test_eviction_is_lru_by_touch(self, rng):
        """Eviction follows least-recently-touched order (get or put).

        A shadow OrderedDict replays the same workload; after every operation
        the cache's key order must match the shadow's, so the evicted node is
        always the least-recently-touched one.
        """
        from collections import OrderedDict
        cache = NeighborCache(capacity=2, max_nodes=8)
        shadow = OrderedDict()
        for step in range(300):
            node_id = int(rng.integers(0, 25))
            if rng.random() < 0.5:
                if cache.get("user", node_id) is not None:
                    shadow.move_to_end(("user", node_id))
            else:
                cache.put("user", node_id, [("item", 1, 1.0)])
                shadow[("user", node_id)] = True
                shadow.move_to_end(("user", node_id))
                while len(shadow) > 8:
                    shadow.popitem(last=False)
            assert list(cache._entries) == list(shadow)

    def test_get_batch_counts_duplicates_like_sequential(self):
        cache = NeighborCache(capacity=3)
        cache.put("user", 1, [("item", 1, 1.0)])
        results = cache.get_batch([("user", 1), ("user", 1), ("user", 2)])
        assert results[0] == results[1] == [("item", 1, 1.0)]
        assert results[2] is None
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_put_batch_equivalent_to_loop(self):
        batched, looped = NeighborCache(capacity=2), NeighborCache(capacity=2)
        entries = [("user", i, [("item", i, 1.0), ("item", i + 1, 0.5),
                                ("item", i + 2, 0.2)]) for i in range(5)]
        batched.put_batch(entries)
        for node_type, node_id, neighbors in entries:
            looped.put(node_type, node_id, neighbors)
        assert batched._entries == looped._entries
        assert batched.stats == looped.stats


class TestRefreshQueue:
    def test_enqueue_does_not_touch_cache(self):
        cache = NeighborCache(capacity=3)
        cache.enqueue_refresh("user", 1, [("item", 1, 1.0)])
        assert cache.pending_refreshes == 1
        assert len(cache) == 0
        assert cache.stats.refreshes == 0

    def test_drain_applies_in_fifo_order(self):
        cache = NeighborCache(capacity=3)
        cache.enqueue_refresh("user", 1, [("item", 1, 1.0)])
        cache.enqueue_refresh("user", 1, [("item", 2, 1.0)])
        assert cache.drain_refreshes() == 2
        assert cache.pending_refreshes == 0
        assert cache.get("user", 1) == [("item", 2, 1.0)]   # last write wins

    def test_drain_respects_limit(self):
        cache = NeighborCache(capacity=3)
        for node_id in range(5):
            cache.enqueue_refresh("user", node_id, [("item", node_id, 1.0)])
        assert cache.drain_refreshes(limit=2) == 2
        assert cache.pending_refreshes == 3
        assert len(cache) == 2


class TestServeBatchEquivalence:
    @pytest.fixture(scope="class")
    def model(self, tiny_graph):
        return STAMPModel(tiny_graph, embedding_dim=8, seed=0)

    def _server(self, model, **kwargs):
        server = OnlineServer(model, cache_capacity=5, ann_cells=4,
                              ann_nprobe=2, **kwargs)
        server.warm_caches(range(5), range(5))
        server.build_inverted_index(range(5))
        return server

    @pytest.mark.parametrize("num_shards", [1, 3])
    def test_batched_matches_sequential(self, model, num_shards):
        requests = [(u % 10, q % 15) for u, q in zip(range(24), range(3, 27))]
        sequential_server = self._server(model, num_shards=num_shards)
        batched_server = self._server(model, num_shards=num_shards)
        sequential = [sequential_server.serve(u, q, k=5) for u, q in requests]
        batched = batched_server.serve_batch(requests, k=5)
        assert len(batched) == len(requests)
        for one, many in zip(sequential, batched):
            assert (one.user_id, one.query_id) == (many.user_id, many.query_id)
            np.testing.assert_array_equal(one.item_ids, many.item_ids)
            # Ids are exact; scores agree at serving precision (float32 BLAS
            # kernels differ by ~1 ulp between batch shapes, as float64 ones
            # did below the old tolerance).
            np.testing.assert_allclose(one.scores, many.scores,
                                       rtol=3e-6, atol=1e-7)
            assert one.from_inverted_index == many.from_inverted_index
        # Cache and index statistics deltas must match exactly.
        assert sequential_server.cache.stats == batched_server.cache.stats
        assert (sequential_server.inverted_index.lookups
                == batched_server.inverted_index.lookups)
        assert (sequential_server.inverted_index.misses
                == batched_server.inverted_index.misses)

    def test_empty_batch(self, model):
        assert self._server(model).serve_batch([], k=5) == []

    def test_batch_of_one(self, model):
        server = self._server(model)
        [result] = server.serve_batch([(0, 1)], k=5)
        again = server.serve(0, 1, k=5)
        np.testing.assert_array_equal(result.item_ids, again.item_ids)
        np.testing.assert_allclose(result.scores, again.scores,
                                   rtol=3e-6, atol=1e-7)

    def test_queued_refreshes_applied_before_batch(self, model):
        server = self._server(model)
        server.cache.enqueue_refresh("user", 0, [("item", 7, 1.0)])
        server.serve_batch([(1, 2)], k=5)
        assert server.cache.pending_refreshes == 0
        assert server.cache.get("user", 0) == [("item", 7, 1.0)]

    def test_num_shards_validation(self, model):
        with pytest.raises(ValueError):
            OnlineServer(model, num_shards=0)


class TestRequestBatcher:
    @pytest.fixture(scope="class")
    def server(self, tiny_graph):
        model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        server = OnlineServer(model, cache_capacity=5, ann_cells=4, ann_nprobe=2)
        server.warm_caches(range(5), range(5))
        server.build_inverted_index(range(5))
        return server

    def test_flushes_when_full(self, server):
        batcher = RequestBatcher(server, max_batch_size=3, max_wait_ms=1e9, k=5)
        assert batcher.submit(0, 1, now_ms=0.0) == []
        assert batcher.submit(1, 2, now_ms=0.1) == []
        results = batcher.submit(2, 3, now_ms=0.2)
        assert [(r.user_id, r.query_id) for r in results] == [(0, 1), (1, 2), (2, 3)]
        assert len(batcher) == 0
        assert batcher.stats.flushed_full == 1

    def test_flushes_on_wait_timeout(self, server):
        batcher = RequestBatcher(server, max_batch_size=100, max_wait_ms=5.0, k=5)
        batcher.submit(0, 1, now_ms=0.0)
        batcher.submit(1, 2, now_ms=1.0)
        results = batcher.submit(2, 3, now_ms=6.0)   # oldest waited 6 ms
        assert [(r.user_id, r.query_id) for r in results] == [(0, 1), (1, 2)]
        assert batcher.pending == [(2, 3)]
        assert batcher.stats.flushed_wait == 1

    def test_manual_flush_and_stats(self, server):
        batcher = RequestBatcher(server, max_batch_size=4, max_wait_ms=1e9, k=5)
        assert batcher.flush() == []                 # nothing pending
        batcher.submit(0, 1, now_ms=0.0)
        results = batcher.flush()
        assert len(results) == 1
        assert batcher.stats.flushed_manual == 1
        assert batcher.stats.mean_batch_size == 1.0

    def test_results_match_direct_serve_batch(self, server):
        requests = [(0, 1), (1, 2), (2, 3), (3, 4)]
        batcher = RequestBatcher(server, max_batch_size=4, max_wait_ms=1e9, k=5)
        collected = []
        for offset, (user_id, query_id) in enumerate(requests):
            collected.extend(batcher.submit(user_id, query_id,
                                            now_ms=float(offset)))
        direct = server.serve_batch(requests, k=5)
        for one, two in zip(collected, direct):
            np.testing.assert_array_equal(one.item_ids, two.item_ids)

    def test_validation(self, server):
        with pytest.raises(ValueError):
            RequestBatcher(server, max_batch_size=0)
        with pytest.raises(ValueError):
            RequestBatcher(server, max_wait_ms=-1.0)

    def test_poll_flushes_wait_expired_partial_batch(self, server):
        # The idle-straggler gap: without poll(), a partial batch whose wait
        # expired would sit forever unless another submit arrived.
        batcher = RequestBatcher(server, max_batch_size=100, max_wait_ms=5.0,
                                 k=5)
        batcher.submit(0, 1, now_ms=0.0)
        batcher.submit(1, 2, now_ms=1.0)
        assert batcher.poll(now_ms=4.9) == []        # within the wait budget
        assert len(batcher) == 2
        results = batcher.poll(now_ms=5.0)           # deadline reached
        assert [(r.user_id, r.query_id) for r in results] == [(0, 1), (1, 2)]
        assert len(batcher) == 0
        assert batcher.stats.flushed_wait == 1
        assert batcher.poll(now_ms=100.0) == []      # nothing left to flush

    def test_ms_until_deadline(self, server):
        batcher = RequestBatcher(server, max_batch_size=100, max_wait_ms=5.0,
                                 k=5)
        assert batcher.ms_until_deadline() is None   # no pending, no timer
        batcher.submit(0, 1, now_ms=10.0)
        assert batcher.ms_until_deadline(now_ms=10.0) == 5.0
        assert batcher.ms_until_deadline(now_ms=13.0) == 2.0
        assert batcher.ms_until_deadline(now_ms=99.0) == 0.0   # clamped
        batcher.flush()
        assert batcher.ms_until_deadline() is None


class TestServeRequest:
    @pytest.fixture(scope="class")
    def server(self, tiny_graph):
        model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        server = OnlineServer(model, cache_capacity=5, ann_cells=4,
                              ann_nprobe=2)
        server.warm_caches(range(5), range(5))
        server.build_inverted_index(range(5))
        return server

    def test_coercion_and_validation(self):
        request = coerce_request((3, 7))
        assert request == ServeRequest(3, 7)
        assert request.key == (3, 7)
        assert request.tenant == "default"
        assert coerce_request(request) is request
        with pytest.raises(TypeError):
            coerce_request("not-a-pair")
        with pytest.raises(ValueError):
            ServeRequest(1, 2, tenant="")

    def test_serve_batch_accepts_typed_and_tuples_identically(self, server):
        tuples = [(0, 1), (1, 2), (2, 3)]
        typed = [ServeRequest(u, q, tenant="gold") for u, q in tuples]
        via_tuples = server.serve_batch(tuples, k=5)
        via_typed = server.serve_batch(typed, k=5)
        for one, two in zip(via_tuples, via_typed):
            np.testing.assert_array_equal(one.item_ids, two.item_ids)
            np.testing.assert_array_equal(one.scores, two.scores)
        assert all(r.tenant == "default" for r in via_tuples)
        assert all(r.tenant == "gold" for r in via_typed)

    def test_batcher_accepts_typed_requests(self, server):
        batcher = RequestBatcher(server, max_batch_size=2, max_wait_ms=1e9,
                                 k=5)
        assert batcher.submit(ServeRequest(0, 1, tenant="gold"),
                              now_ms=0.0) == []
        assert batcher.pending == [(0, 1)]           # legacy tuple view
        assert batcher.pending_requests[0].tenant == "gold"
        results = batcher.submit((1, 2), now_ms=0.1)
        assert [(r.user_id, r.query_id) for r in results] == [(0, 1), (1, 2)]
        assert results[0].tenant == "gold"


class TestBatchedLatencyModel:
    def test_calibration_recovers_affine_profile(self):
        simulator = LatencySimulator(num_servers=8)
        profile = simulator.calibrate_batch_profile(
            [1, 4, 16, 64], [1.2 + 0.05 * b for b in (1, 4, 16, 64)])
        assert profile.fixed_ms == pytest.approx(1.2, rel=1e-6)
        assert profile.per_request_ms == pytest.approx(0.05, rel=1e-6)

    def test_batched_response_includes_assembly_wait(self):
        simulator = LatencySimulator(num_servers=64,
                                     batch_profile=BatchServiceProfile(1.0, 0.01))
        qps = 10_000
        response = simulator.batched_response_ms(qps, batch_size=32)
        assembly = (32 - 1) / (2.0 * qps) * 1000.0
        service = 1.0 + 0.01 * 32
        assert response >= assembly + service - 1e-9

    def test_amortisation_beats_per_request_queue_at_high_load(self):
        """With a dominant fixed cost, batching must lower the response time."""
        simulator = LatencySimulator(num_servers=4,
                                     batch_profile=BatchServiceProfile(2.0, 0.01))
        # Sequentially (batch of 1) each request costs ~2 ms of service, so
        # 4 servers saturate near 2K QPS; batches of 32 amortise the fixed
        # cost and serve 5K QPS with only a sub-ms assembly wait.
        assert (simulator.batched_response_ms(5000, 32)
                < simulator.batched_response_ms(5000, 1))

    def test_batch_sweep_rows(self):
        simulator = LatencySimulator(num_servers=16,
                                     batch_profile=BatchServiceProfile(0.5, 0.02))
        rows = simulator.batch_sweep(5000, [1, 8, 32])
        assert [row["batch_size"] for row in rows] == [1, 8, 32]
        for row in rows:
            assert row["response_ms"] >= row["assembly_ms"]

    def test_validation(self):
        simulator = LatencySimulator()
        with pytest.raises(ValueError):
            simulator.calibrate_batch_profile([4], [1.0])
        with pytest.raises(ValueError):
            simulator.calibrate_batch_profile([4, 4], [1.0, 1.1])
        with pytest.raises(ValueError):
            simulator.calibrate_batch_profile([1, 4], [1.0, -0.1])
        with pytest.raises(ValueError):
            simulator.batched_response_ms(0, 4)
        with pytest.raises(ValueError):
            simulator.batched_response_ms(100, 0)
        with pytest.raises(ValueError):
            BatchServiceProfile(1.0, 0.1).batch_service_ms(0)
