"""Shared fixtures: tiny datasets and models sized for fast unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ZoomerConfig, ZoomerModel
from repro.data import (
    MovieLensConfig,
    SyntheticTaobaoConfig,
    generate_movielens_dataset,
    generate_taobao_dataset,
    train_test_split_examples,
)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small Taobao-like dataset shared by most tests (session-scoped)."""
    config = SyntheticTaobaoConfig(
        num_users=30, num_queries=24, num_items=60, num_categories=6,
        sessions_per_user=4.0, clicks_per_session=3, seed=7)
    return generate_taobao_dataset(config)


@pytest.fixture(scope="session")
def tiny_graph(tiny_dataset):
    """The heterogeneous graph of the tiny dataset."""
    return tiny_dataset.graph


@pytest.fixture(scope="session")
def tiny_splits(tiny_dataset):
    """(train, test) impression splits of the tiny dataset."""
    return train_test_split_examples(tiny_dataset.impressions, 0.9, seed=0)


@pytest.fixture(scope="session")
def tiny_movielens():
    """A small MovieLens-like dataset (session-scoped)."""
    config = MovieLensConfig(num_users=40, num_movies=60, num_tags=15,
                             num_genres=4, ratings_per_user=6.0, seed=9)
    return generate_movielens_dataset(config)


@pytest.fixture(scope="session")
def zoomer_config():
    """A small Zoomer configuration used across model tests."""
    return ZoomerConfig(embedding_dim=8, hidden_dim=8, tower_hidden=(16,),
                        fanouts=(4, 2), epochs=1, batch_size=16, seed=0)


@pytest.fixture(scope="session")
def zoomer_model(tiny_graph, zoomer_config):
    """An untrained Zoomer model over the tiny graph (session-scoped)."""
    return ZoomerModel(tiny_graph, zoomer_config)


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
