"""Tests for the nn substrate: modules, layers, initialisers and optimizers."""

import numpy as np
import pytest

from repro.ndarray.tensor import Tensor
from repro.nn import Adam, Embedding, Linear, MLP, LayerNorm, Dropout, SGD, init
from repro.nn.module import Module, Parameter


class TestModuleSystem:
    def test_parameter_registration(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones((2, 2)))
                self.child = Linear(2, 3)

        toy = Toy()
        names = [name for name, _ in toy.named_parameters()]
        assert "w" in names
        assert "child.weight" in names and "child.bias" in names
        assert toy.num_parameters() == 4 + 6 + 3

    def test_state_dict_roundtrip(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        state = layer.state_dict()
        other = Linear(3, 2, rng=np.random.default_rng(99))
        other.load_state_dict(state)
        np.testing.assert_allclose(other.weight.numpy(), layer.weight.numpy())

    def test_load_state_dict_strict_mismatch(self):
        layer = Linear(3, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": layer.weight.numpy()})

    def test_load_state_dict_shape_mismatch(self):
        layer = Linear(3, 2)
        bad = {name: value for name, value in layer.state_dict().items()}
        bad["weight"] = np.ones((5, 5))
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_train_eval_recursive(self):
        mlp = MLP([4, 4, 2])
        mlp.eval()
        assert all(not module.training for module in mlp.modules())
        mlp.train()
        assert all(module.training for module in mlp.modules())

    def test_zero_grad_clears(self):
        layer = Linear(2, 2)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes_and_grad(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.random.default_rng(1).normal(size=(5, 4))))
        assert out.shape == (5, 3)
        out.sum().backward()
        assert layer.weight.grad.shape == (4, 3)
        assert layer.bias.grad.shape == (3,)

    def test_linear_without_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_embedding_lookup_and_bounds(self):
        table = Embedding(10, 4, rng=np.random.default_rng(0))
        out = table(np.array([0, 3, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.numpy()[1], out.numpy()[2])
        with pytest.raises(IndexError):
            table(np.array([10]))

    def test_embedding_gradient_accumulates_for_repeats(self):
        table = Embedding(5, 2)
        table(np.array([1, 1, 2])).sum().backward()
        grad = table.weight.grad
        np.testing.assert_allclose(grad[1], [2.0, 2.0])
        np.testing.assert_allclose(grad[2], [1.0, 1.0])
        np.testing.assert_allclose(grad[0], [0.0, 0.0])

    def test_mlp_output_shape_and_final_activation(self):
        mlp = MLP([4, 8, 2], final_activation="sigmoid",
                  rng=np.random.default_rng(0))
        out = mlp(Tensor(np.random.default_rng(1).normal(size=(6, 4))))
        assert out.shape == (6, 2)
        assert np.all(out.numpy() >= 0) and np.all(out.numpy() <= 1)

    def test_mlp_requires_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_mlp_rejects_unknown_activation(self):
        mlp = MLP([2, 3, 2], activation="bogus")
        with pytest.raises(ValueError):
            mlp(Tensor(np.ones((1, 2))))

    def test_layer_norm_normalises(self):
        norm = LayerNorm(8)
        out = norm(Tensor(np.random.default_rng(0).normal(size=(3, 8)) * 10))
        values = out.numpy()
        np.testing.assert_allclose(values.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(values.std(axis=-1), 1.0, atol=1e-2)

    def test_dropout_eval_is_identity(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((4, 4)))
        drop.eval()
        np.testing.assert_allclose(drop(x).numpy(), x.numpy())
        drop.train()
        dropped = drop(x).numpy()
        assert np.any(dropped == 0.0)
        assert pytest.approx(2.0, rel=0.01) == dropped[dropped > 0][0]

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestInit:
    def test_shapes(self):
        assert init.xavier_uniform((4, 3)).shape == (4, 3)
        assert init.xavier_normal((4, 3)).shape == (4, 3)
        assert init.he_uniform((4, 3)).shape == (4, 3)
        assert init.normal((2, 2), 0.1).shape == (2, 2)
        assert np.all(init.zeros((5,)) == 0)

    def test_xavier_scale_reasonable(self):
        weights = init.xavier_uniform((100, 100), np.random.default_rng(0))
        limit = np.sqrt(6.0 / 200)
        assert np.abs(weights).max() <= limit + 1e-12

    def test_deterministic_with_rng(self):
        a = init.normal((3, 3), rng=np.random.default_rng(5))
        b = init.normal((3, 3), rng=np.random.default_rng(5))
        np.testing.assert_allclose(a, b)


class TestSeededFallback:
    """Rng-less construction draws from a seeded process-wide stream."""

    def test_rngless_construction_is_bit_identical(self):
        # Two identical construction sequences from a rewound fallback
        # stream produce bit-identical weights: no OS entropy anywhere.
        init.reset_default_init_rng()
        first = MLP([4, 8, 2])
        first_drop = Dropout(0.5)
        init.reset_default_init_rng()
        second = MLP([4, 8, 2])
        second_drop = Dropout(0.5)
        for (name_a, a), (name_b, b) in zip(first.named_parameters(),
                                            second.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(a.data, b.data)
        first_drop.train()
        second_drop.train()
        x = Tensor(np.ones((3, 5)))
        np.testing.assert_array_equal(first_drop(x).data,
                                      second_drop(x).data)

    def test_fallback_is_stateful_so_siblings_differ(self):
        init.reset_default_init_rng()
        a = Linear(4, 4)
        b = Linear(4, 4)
        assert not np.array_equal(a.weight.data, b.weight.data)

    def test_explicit_rng_still_wins(self):
        a = Linear(3, 3, rng=np.random.default_rng(9))
        b = Linear(3, 3, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([1.0, -2.0, 3.0])
        param = Parameter(np.zeros(3))

        def loss_fn():
            diff = param - Tensor(target)
            return (diff * diff).sum()

        return param, loss_fn, target

    def test_sgd_converges_on_quadratic(self):
        param, loss_fn, target = self._quadratic_problem()
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        np.testing.assert_allclose(param.numpy(), target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        param, loss_fn, target = self._quadratic_problem()
        optimizer = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        np.testing.assert_allclose(param.numpy(), target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        param, loss_fn, target = self._quadratic_problem()
        optimizer = Adam([param], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        np.testing.assert_allclose(param.numpy(), target, atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.array([10.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        # No data gradient: only weight decay acts, so the value must shrink.
        param.grad = np.zeros(1)
        for _ in range(10):
            optimizer.step()
        assert abs(param.numpy()[0]) < 10.0

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], lr=0.1, weight_decay=-1.0)

    def test_step_skips_params_without_grad(self):
        param = Parameter(np.ones(2))
        before = param.numpy().copy()
        SGD([param], lr=0.5).step()
        np.testing.assert_allclose(param.numpy(), before)
