"""Chaos-engineering tests: the deterministic fault plan and every recovery layer.

The contract chain pinned here:

* **Replayable injection** — a :class:`FaultPlan` under a fixed seed fires
  the identical fault sequence run over run (Philox decisions keyed by
  ``(seed, site, occurrence)``), and its ``fired`` ledger / ``summary()``
  are the recovery accounting.
* **Pool supervision** — an injected ``worker.crash`` is recovered by
  respawn + resubmit with bit-identical, ordered results; exhausted
  retries break the pool loudly; the engine downgrades to the serial
  backend and keeps producing identical outputs.
* **Serving resilience** — ``DaemonClient`` classifies transport
  failures, retries with seeded backoff, and fails fast behind an open
  circuit breaker; an injected ``refresh.ann_fail`` leaves the server
  serving the prior version (degraded-flagged) and a retried refresh
  clears it.
* **Crash-safe ingest** — micro-batches are journaled before they are
  applied; a crashed replay recovers from a fresh pipeline via
  ``recover_from_wal`` to the exact state of an uninterrupted run, and
  re-running recovery is a strict no-op.
"""

from __future__ import annotations

import glob
import socket

import numpy as np
import pytest

from repro.api import (
    DataSpec,
    ExperimentSpec,
    FaultSpec,
    Pipeline,
    PipelineError,
    StreamingSpec,
    TrainSpec,
)
from repro.data import IngestJournal, SearchSession
from repro.faults import (
    KNOWN_SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    arm,
    disarm,
    fault_point,
)
from repro.graph.update import GraphMutator
from repro.parallel import ParallelEngine, WorkerCrashError, WorkerPool
from repro.parallel.shm import set_pack_prefix, share_result_pack
from repro.serving import (
    CircuitBreaker,
    CircuitOpenError,
    DaemonClient,
    RefreshError,
    RetryPolicy,
    classify_transport_error,
)


@pytest.fixture(autouse=True)
def disarmed():
    """No test may leak an armed plan into its neighbours."""
    disarm()
    yield
    disarm()


def _tiny_spec(**streaming):
    return ExperimentSpec(
        dataset=DataSpec(params={"num_users": 25, "num_queries": 20,
                                 "num_items": 50, "sessions_per_user": 4.0},
                         max_train_examples=120, max_test_examples=0),
        training=TrainSpec(epochs=1, max_batches_per_epoch=3, batch_size=64),
        streaming=StreamingSpec(**streaming) if streaming else StreamingSpec())


# ---------------------------------------------------------------------- #
# The plan: determinism, schedules, arming
# ---------------------------------------------------------------------- #
class TestFaultPlan:
    def test_fixed_seed_replays_identical_fault_sequence(self):
        def run():
            plan = FaultPlan({"net.drop": {"probability": 0.3}}, seed=42)
            decisions = [plan.fires("net.drop") for _ in range(50)]
            return decisions, list(plan.fired), plan.summary()

        first, second = run(), run()
        assert first == second
        assert any(first[0]), "p=0.3 over 50 occurrences should fire"
        assert not all(first[0])

    def test_different_seeds_differ_and_sites_are_independent(self):
        a = FaultPlan({"net.drop": {"probability": 0.5}}, seed=0)
        b = FaultPlan({"net.drop": {"probability": 0.5}}, seed=1)
        assert [a.fires("net.drop") for _ in range(64)] \
            != [b.fires("net.drop") for _ in range(64)]
        # Interleaving another site does not move net.drop's decisions.
        c = FaultPlan({"net.drop": {"probability": 0.5},
                       "net.stall": {"probability": 0.5}}, seed=0)
        interleaved = []
        for _ in range(64):
            c.fires("net.stall")
            interleaved.append(c.fires("net.drop"))
        alone = FaultPlan({"net.drop": {"probability": 0.5}}, seed=0)
        assert interleaved == [alone.fires("net.drop") for _ in range(64)]

    def test_schedule_max_fires_and_ledger(self):
        plan = FaultPlan({"worker.crash": FaultRule(at=(0, 2, 3),
                                                    max_fires=2)})
        assert [plan.fires("worker.crash") for _ in range(5)] \
            == [True, False, True, False, False]
        assert plan.fired == [("worker.crash", 0), ("worker.crash", 2)]
        assert plan.summary() == {"worker.crash": {"occurrences": 5,
                                                   "fired": 2}}

    def test_unknown_sites_and_bad_rules_rejected(self):
        with pytest.raises(ValueError, match="unknown fault sites"):
            FaultPlan({"no.such.site": {"at": [0]}})
        with pytest.raises(ValueError, match="probability"):
            FaultRule(probability=1.5)
        with pytest.raises(ValueError, match="schedule|probability"):
            FaultRule()
        with pytest.raises(ValueError, match="max_fires"):
            FaultRule(at=(0,), max_fires=0)
        with pytest.raises(ValueError, match="unknown fault-rule keys"):
            FaultPlan({"net.drop": {"when": [0]}})
        with pytest.raises(ValueError, match="stall_ms"):
            FaultPlan({"net.drop": {"at": [0]}}, stall_ms=-1.0)

    def test_arming_is_explicit_and_scoped(self):
        assert active_plan() is None
        assert fault_point("worker.crash") is False   # unarmed: never fires
        plan = FaultPlan({"worker.crash": {"at": [0]}})
        with plan.armed():
            assert active_plan() is plan
            assert fault_point("worker.crash") is True
            assert fault_point("worker.crash") is False
        assert active_plan() is None
        arm(plan)
        assert active_plan() is plan
        disarm()
        assert active_plan() is None

    def test_raise_if_fires(self):
        plan = FaultPlan({"ingest.crash": {"at": [1]}})
        plan.raise_if_fires("ingest.crash")            # occurrence 0: quiet
        with pytest.raises(InjectedFault, match="ingest.crash"):
            plan.raise_if_fires("ingest.crash")

    def test_wire_round_trip(self):
        plan = FaultPlan({"net.stall": {"probability": 0.25, "at": [1],
                                        "max_fires": 3}},
                         seed=9, stall_ms=35.0)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.rules == plan.rules
        assert (clone.seed, clone.stall_ms) == (9, 35.0)
        bare = FaultPlan.from_json('{"worker.crash": {"at": [2]}}')
        assert bare.rules["worker.crash"].at == (2,)
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json('[1, 2]')

    def test_every_known_site_is_documented(self):
        assert set(KNOWN_SITES) == {"worker.crash", "refresh.ann_fail",
                                    "net.stall", "net.drop", "ingest.crash"}
        assert all(KNOWN_SITES.values())


class TestFaultSpec:
    def test_spec_round_trips_with_faults_section(self):
        spec = _tiny_spec()
        spec.faults = FaultSpec(points={"worker.crash": {"at": [1]}},
                                seed=5, stall_ms=10.0)
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone.faults.points == {"worker.crash": {"at": [1]}}
        assert clone.faults.seed == 5
        plan = clone.faults.to_plan()
        assert plan is not None and plan.seed == 5 and plan.stall_ms == 10.0

    def test_empty_faults_build_no_plan(self):
        spec = _tiny_spec()
        spec.validate()
        assert spec.faults.to_plan() is None

    def test_validation_rejects_bad_sections(self):
        bad = _tiny_spec()
        bad.faults = FaultSpec(points={"no.such.site": {"at": [0]}})
        with pytest.raises(ValueError, match="unknown fault sites"):
            bad.validate()
        bad = _tiny_spec()
        bad.faults = FaultSpec(stall_ms=-2.0)
        with pytest.raises(ValueError, match="stall_ms"):
            bad.validate()
        bad = _tiny_spec()
        bad.faults = FaultSpec(seed=True)
        with pytest.raises(ValueError, match="seed"):
            bad.validate()

    def test_spec_seed_seeds_the_plan_unless_overridden(self):
        spec = _tiny_spec()
        spec.seed = 7
        spec.faults = FaultSpec(points={"net.drop": {"probability": 0.5}})
        assert spec.faults.to_plan(default_seed=spec.seed).seed == 7
        spec.faults.seed = 11
        assert spec.faults.to_plan(default_seed=spec.seed).seed == 11


# ---------------------------------------------------------------------- #
# Pool supervision: crash -> respawn -> resubmit, or loud downgrade
# ---------------------------------------------------------------------- #
class TestPoolCrashRecovery:
    def test_injected_crash_recovers_with_ordered_results(self):
        plan = arm(FaultPlan({"worker.crash": {"at": [1]}}))
        payloads = [{"value": index} for index in range(6)]
        with WorkerPool(2) as pool:
            assert pool.map("echo", payloads) == payloads
            stats = pool.stats
        assert stats.faults_injected == 1
        assert stats.crashes_recovered == 1
        assert stats.workers_respawned == 2
        assert stats.tasks_resubmitted >= 1
        assert plan.fired == [("worker.crash", 1)]

    def test_exhausted_retries_break_the_pool_loudly(self):
        # Resubmitted tasks are never re-poisoned (bit-identical retry), so
        # each poisoned batch costs exactly one recovery.  With a budget of
        # one, the second crash must break the pool loudly instead of
        # looping forever — and a broken pool refuses further work.
        arm(FaultPlan({"worker.crash": {"probability": 1.0}}))
        pool = WorkerPool(2, max_task_retries=1)
        try:
            assert pool.map("echo", [{"value": 1}]) == [{"value": 1}]
            assert pool.stats.crashes_recovered == 1
            with pytest.raises(WorkerCrashError, match="exited"):
                pool.map("echo", [{"value": 2}])
            with pytest.raises(WorkerCrashError, match="earlier recoveries"):
                pool.submit("echo", {"value": 3})
        finally:
            disarm()
            pool.shutdown()

    def test_engine_downgrades_to_serial_bit_identically(self, tiny_graph):
        arm(FaultPlan({"worker.crash": {"probability": 1.0}}))
        engine = ParallelEngine(tiny_graph, num_workers=2, backend="shared",
                                max_task_retries=0)
        try:
            payloads = [{"value": index} for index in range(4)]
            assert engine.executor.map("echo", payloads) == payloads
            assert engine.degraded is True
            assert engine.backend == "serial"
            assert "downgraded to serial" in engine.downgrade_reason
            disarm()
            # The stable executor handle keeps working after the downgrade.
            assert engine.executor.map("echo", payloads) == payloads
        finally:
            disarm()
            engine.close()

    def test_shutdown_sweeps_leaked_result_packs(self):
        # A pack created under the pool's prefix whose handle is lost (the
        # crash scenario) must not survive the pool in /dev/shm.
        pool = WorkerPool(1)
        try:
            set_pack_prefix(pool.pack_prefix)
            share_result_pack([np.arange(8)])      # handle dropped: leaked
        finally:
            set_pack_prefix(None)
        leaked = glob.glob(f"/dev/shm/{pool.pack_prefix}_*")
        assert leaked, "the pack must exist before the sweep"
        pool.shutdown()
        assert not glob.glob(f"/dev/shm/{pool.pack_prefix}_*")


# ---------------------------------------------------------------------- #
# Client-side resilience primitives
# ---------------------------------------------------------------------- #
class TestResiliencePrimitives:
    def test_transport_error_classification(self):
        assert classify_transport_error(ConnectionRefusedError()) \
            == "connect_refused"
        assert classify_transport_error(socket.timeout()) == "timeout"
        assert classify_transport_error(TimeoutError()) == "timeout"
        for reset in (ConnectionResetError(), BrokenPipeError(), EOFError()):
            assert classify_transport_error(reset) == "reset"
        assert classify_transport_error(ValueError("boom")) == "other"

    def test_retry_policy_is_bounded_and_seeded(self):
        policy = RetryPolicy(max_retries=2, base_delay_s=0.1, max_delay_s=0.5,
                             jitter=0.5, seed=3)
        twin = RetryPolicy(max_retries=2, base_delay_s=0.1, max_delay_s=0.5,
                           jitter=0.5, seed=3)
        delays = [policy.backoff_s(attempt) for attempt in range(6)]
        assert delays == [twin.backoff_s(attempt) for attempt in range(6)]
        assert all(0.1 <= delay <= 0.5 * 1.5 for delay in delays)
        assert policy.should_retry(0) and policy.should_retry(1)
        assert not policy.should_retry(2)
        no_jitter = RetryPolicy(base_delay_s=0.05, max_delay_s=1.0,
                                jitter=0.0)
        assert [no_jitter.backoff_s(a) for a in range(4)] \
            == [0.05, 0.1, 0.2, 0.4]
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)

    def test_circuit_breaker_state_machine(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=10.0)
        assert breaker.allow(now=0.0)
        breaker.record_failure(now=0.0)
        assert breaker.state == "closed" and breaker.allow(now=0.0)
        breaker.record_failure(now=1.0)                  # streak hits 2
        assert breaker.state == "open"
        assert not breaker.allow(now=5.0)                # failing fast
        assert breaker.allow(now=11.5)                   # half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow(now=11.6)               # one probe at a time
        breaker.record_failure(now=11.7)                 # probe failed
        assert breaker.state == "open" and breaker.opened_count == 2
        assert breaker.allow(now=22.0)                   # next probe...
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0
        assert breaker.allow(now=22.1)
        assert breaker.snapshot()["opened_count"] == 2
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


# ---------------------------------------------------------------------- #
# DaemonClient under injected network faults
# ---------------------------------------------------------------------- #
class TestDaemonClientResilience:
    @pytest.fixture()
    def daemon(self, tiny_graph):
        from repro.api.spec import DaemonSpec
        from repro.baselines import STAMPModel
        from repro.serving import OnlineServer, ServingDaemon

        model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
        server = OnlineServer(model, cache_capacity=5, ann_cells=4,
                              ann_nprobe=2)
        server.warm_caches(range(5), range(5))
        server.build_inverted_index(range(5))
        with ServingDaemon(server, spec=DaemonSpec(
                max_batch_size=4, max_wait_ms=5.0,
                max_queue_depth=16)) as daemon:
            yield daemon

    def test_retry_recovers_from_an_injected_drop(self, daemon):
        arm(FaultPlan({"net.drop": {"at": [0]}}))
        with DaemonClient(daemon.host, daemon.port,
                          retry=RetryPolicy(max_retries=2, base_delay_s=0.01,
                                            jitter=0.0)) as client:
            response = client.serve(0, 1, k=3)
        assert response["ok"] is True
        assert client.transport_failures == {"reset": 1}

    def test_timeout_on_injected_stall_is_classified_and_retried(
            self, daemon):
        arm(FaultPlan({"net.stall": {"at": [0]}}, stall_ms=500.0))
        with DaemonClient(daemon.host, daemon.port, request_timeout=0.08,
                          retry=RetryPolicy(max_retries=2, base_delay_s=0.01,
                                            jitter=0.0)) as client:
            response = client.serve(0, 1, k=3)
        assert response["ok"] is True
        assert client.transport_failures["timeout"] == 1

    def test_open_breaker_fails_fast_without_touching_the_socket(
            self, daemon):
        plan = arm(FaultPlan({"net.drop": {"probability": 1.0}}))
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=60.0)
        with DaemonClient(daemon.host, daemon.port,
                          breaker=breaker) as client:
            with pytest.raises(ConnectionError):
                client.serve(0, 1, k=3)
            assert breaker.state == "open"
            occurrences = plan.summary()["net.drop"]["occurrences"]
            with pytest.raises(CircuitOpenError):
                client.serve(0, 1, k=3)
            # Fail-fast: the daemon never saw the gated request.
            assert plan.summary()["net.drop"]["occurrences"] == occurrences

    def test_bare_client_is_unchanged(self, daemon):
        with DaemonClient(daemon.host, daemon.port) as client:
            assert client.serve(0, 1, k=3)["ok"] is True
            assert client.transport_failures == {}

    def test_stats_surface_server_degradation(self, daemon):
        with DaemonClient(daemon.host, daemon.port) as client:
            stats = client.stats()
        assert stats["server"]["degraded"] is False
        daemon.server.degraded = True
        daemon.server.degraded_reason = "refresh to version 9 failed"
        try:
            with DaemonClient(daemon.host, daemon.port) as client:
                stats = client.stats()
        finally:
            daemon.server.degraded = False
            daemon.server.degraded_reason = ""
        assert stats["server"]["degraded"] is True
        assert "version 9" in stats["server"]["degraded_reason"]


# ---------------------------------------------------------------------- #
# Failure-atomic server refresh
# ---------------------------------------------------------------------- #
class TestRefreshAtomicity:
    def test_failed_refresh_keeps_serving_the_prior_version(self):
        pipeline = Pipeline(_tiny_spec())
        server = pipeline.deploy()
        version_before = server.graph_version
        ann_before = server.ann
        baseline = server.serve(0, 0, k=5)
        mutator = GraphMutator(pipeline.graph, seed=11)
        delta = mutator.apply_sessions([(0, 0, [50, 51])])

        arm(FaultPlan({"refresh.ann_fail": {"at": [0]}}))
        with pytest.raises(RefreshError, match="before commit"):
            server.refresh(delta)
        # Nothing committed: same version, same ANN object, still serving.
        assert server.degraded is True
        assert "refresh to version" in server.degraded_reason
        assert server.graph_version == version_before
        assert server.ann is ann_before
        retained = server.serve(0, 0, k=5)
        np.testing.assert_array_equal(retained.item_ids, baseline.item_ids)

        # The retry (occurrence 1 is not scheduled) commits and clears.
        report = server.refresh(delta)
        assert report.version == delta.version == server.graph_version
        assert server.degraded is False and server.degraded_reason == ""
        assert server._item_embeddings.shape[0] == \
            pipeline.graph.num_nodes[server.item_type]

    def test_ingest_parks_the_delta_and_recovers_on_the_next_flush(self):
        pipeline = Pipeline(_tiny_spec(micro_batch_size=2, refresh_every=1))
        pipeline.deploy()
        with FaultPlan({"refresh.ann_fail": {"at": [0]}}).armed():
            report = pipeline.ingest([(0, 0, [1, 2]), (1, 1, [3, 4])])
            assert report.failed_refreshes == 1
            assert report.refreshes == 0
            assert pipeline.server.degraded is True
            assert pipeline.server.graph_version < pipeline.graph.version
            # The next cadence point retries the merged backlog.
            report = pipeline.ingest([(2, 2, [5, 6]), (3, 3, [7, 8])])
        assert report.failed_refreshes == 0
        assert report.refreshes >= 1
        assert pipeline.server.degraded is False
        assert pipeline.server.graph_version == pipeline.graph.version


# ---------------------------------------------------------------------- #
# The write-ahead log
# ---------------------------------------------------------------------- #
class TestIngestJournal:
    def test_round_trip_sessions_and_tuples(self, tmp_path):
        journal = IngestJournal(str(tmp_path / "wal.jsonl"))
        session = SearchSession(user_id=3, query_id=4, clicked_items=(7, 9),
                                timestamp=12.5, intent_category=2)
        journal.append(0, [session])
        journal.append(1, [(5, 6, [8])])
        records = list(journal.records())
        assert [version for version, _ in records] == [0, 1]
        assert records[0][1] == [session]
        replayed = records[1][1][0]
        assert (replayed.user_id, replayed.query_id,
                replayed.clicked_items) == (5, 6, (8,))
        assert len(journal) == 2
        journal.clear()
        assert len(journal) == 0 and list(journal.records()) == []

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = IngestJournal(str(path))
        journal.append(0, [(1, 2, [3])])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"version": 1, "sessions": [[4, 5')   # crash victim
        assert len(journal) == 1

    def test_torn_middle_line_is_corruption(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = IngestJournal(str(path))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"version": 0, "sessions"\n')         # torn...
            handle.write('{"version": 1, "sessions": [[1, 2, [3], 0.0, -1]]}\n')
        with pytest.raises(ValueError, match="corrupt"):
            list(journal.records())


class TestWalRecovery:
    SESSIONS = [(0, 0, [1, 2]), (1, 1, [3, 4]),
                (2, 2, [5, 6]), (3, 3, [7, 8])]

    def _spec(self, tmp_path, name):
        spec = _tiny_spec(micro_batch_size=2)
        spec.streaming.wal_path = str(tmp_path / name)
        return spec

    def _state(self, pipeline):
        graph = pipeline.graph
        return (graph.version, graph.total_edges, dict(graph.num_nodes),
                graph.summary())

    def test_crash_recovery_matches_the_uninterrupted_run(self, tmp_path):
        # Uninterrupted reference run (its own WAL, same spec otherwise).
        reference = Pipeline(self._spec(tmp_path, "reference.jsonl"))
        reference.build_graph()
        reference.ingest(self.SESSIONS)

        # The victim crashes after journaling the second micro-batch.
        victim = Pipeline(self._spec(tmp_path, "wal.jsonl"))
        victim.build_graph()
        with FaultPlan({"ingest.crash": {"at": [1]}}).armed():
            with pytest.raises(InjectedFault, match="ingest.crash"):
                victim.ingest(self.SESSIONS)
        journal = IngestJournal(str(tmp_path / "wal.jsonl"))
        assert len(journal) == 2          # both batches journaled pre-apply
        assert victim.graph.version == reference.graph.version - 1

        # A fresh process (same spec, same seed) replays the journal and
        # continues where the stream left off.
        recovered = Pipeline(self._spec(tmp_path, "wal.jsonl"))
        report = recovered.recover_from_wal()
        assert report.micro_batches == 2
        assert report.replay_skipped == 0
        assert recovered.graph.version == reference.graph.version
        assert self._state(recovered) == self._state(reference)

    def test_recovery_is_idempotent_and_skips_applied_records(self, tmp_path):
        pipeline = Pipeline(self._spec(tmp_path, "wal.jsonl"))
        pipeline.build_graph()
        first = pipeline.ingest(self.SESSIONS)
        assert first.journaled_batches == 2
        state = self._state(pipeline)
        # Recovery on the already-caught-up pipeline replays nothing.
        report = pipeline.recover_from_wal()
        assert report.replay_skipped == 2
        assert report.micro_batches == 0
        assert self._state(pipeline) == state

    def test_replayed_batches_are_not_rejournaled(self, tmp_path):
        pipeline = Pipeline(self._spec(tmp_path, "wal.jsonl"))
        pipeline.build_graph()
        pipeline.ingest(self.SESSIONS[:2])
        recovered = Pipeline(self._spec(tmp_path, "wal.jsonl"))
        recovered.recover_from_wal()
        assert len(IngestJournal(str(tmp_path / "wal.jsonl"))) == 1
        # New (post-recovery) ingests journal again.
        recovered.ingest(self.SESSIONS[2:])
        assert len(IngestJournal(str(tmp_path / "wal.jsonl"))) == 2

    def test_foreign_journal_raises_a_gap_error(self, tmp_path):
        journal = IngestJournal(str(tmp_path / "wal.jsonl"))
        journal.append(7, [(0, 0, [1])])      # version far ahead of fresh
        pipeline = Pipeline(self._spec(tmp_path, "wal.jsonl"))
        with pytest.raises(PipelineError, match="journal gap"):
            pipeline.recover_from_wal()

    def test_recover_requires_a_wal_path(self):
        with pytest.raises(PipelineError, match="wal_path"):
            Pipeline(_tiny_spec()).recover_from_wal()
