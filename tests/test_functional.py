"""Tests for the functional helpers (losses, similarity, regularisation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ndarray import functional as F
from repro.ndarray.tensor import Tensor


class TestActivations:
    def test_wrappers_match_methods(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(F.relu(x).numpy(), x.relu().numpy())
        np.testing.assert_allclose(F.sigmoid(x).numpy(), x.sigmoid().numpy())
        np.testing.assert_allclose(F.tanh(x).numpy(), x.tanh().numpy())
        np.testing.assert_allclose(F.leaky_relu(x).numpy(),
                                   x.leaky_relu().numpy())
        np.testing.assert_allclose(F.softmax(x).numpy(), x.softmax().numpy())
        np.testing.assert_allclose(F.log_softmax(x).numpy(),
                                   x.log_softmax().numpy())

    def test_concat_stack(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 2)))
        assert F.concat([a, b], axis=1).shape == (2, 4)
        assert F.stack([a, b], axis=0).shape == (2, 2, 2)


class TestSimilarity:
    def test_dot_rows(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        b = Tensor(np.array([[5.0, 6.0], [7.0, 8.0]]))
        np.testing.assert_allclose(F.dot_rows(a, b).numpy(), [17.0, 53.0])

    def test_cosine_similarity_identity(self):
        a = Tensor(np.array([[1.0, 0.0], [0.0, 2.0]]))
        np.testing.assert_allclose(F.cosine_similarity(a, a).numpy(),
                                   [1.0, 1.0], atol=1e-9)

    def test_cosine_similarity_orthogonal(self):
        a = Tensor(np.array([[1.0, 0.0]]))
        b = Tensor(np.array([[0.0, 1.0]]))
        np.testing.assert_allclose(F.cosine_similarity(a, b).numpy(), [0.0],
                                   atol=1e-9)

    def test_mean_pool(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose(F.mean_pool(x, axis=0).numpy(), [2.0, 3.0])


class TestLosses:
    def test_bce_matches_manual(self):
        probs = Tensor(np.array([0.9, 0.1, 0.8]))
        labels = np.array([1.0, 0.0, 1.0])
        expected = -np.mean([np.log(0.9), np.log(0.9), np.log(0.8)])
        assert F.binary_cross_entropy(probs, labels).item() == pytest.approx(
            expected, rel=1e-6)

    def test_bce_with_logits(self):
        logits = Tensor(np.array([2.0, -2.0]))
        labels = np.array([1.0, 0.0])
        direct = F.binary_cross_entropy(logits.sigmoid(), labels).item()
        assert F.binary_cross_entropy_with_logits(logits, labels).item() == \
            pytest.approx(direct)

    def test_perfect_predictions_give_small_loss(self):
        probs = Tensor(np.array([1.0, 0.0, 1.0]))
        labels = np.array([1.0, 0.0, 1.0])
        assert F.binary_cross_entropy(probs, labels).item() < 1e-5
        assert F.focal_cross_entropy(probs, labels).item() < 1e-5

    def test_focal_downweights_easy_examples(self):
        easy = Tensor(np.array([0.9]))
        hard = Tensor(np.array([0.6]))
        labels = np.array([1.0])
        bce_ratio = (F.binary_cross_entropy(hard, labels).item()
                     / F.binary_cross_entropy(easy, labels).item())
        focal_ratio = (F.focal_cross_entropy(hard, labels).item()
                       / F.focal_cross_entropy(easy, labels).item())
        # Focal loss should penalise the hard example relatively more.
        assert focal_ratio > bce_ratio

    def test_focal_gamma_zero_equals_bce(self):
        probs = Tensor(np.array([0.7, 0.3, 0.55]))
        labels = np.array([1.0, 0.0, 1.0])
        assert F.focal_cross_entropy(probs, labels, gamma=0.0).item() == \
            pytest.approx(F.binary_cross_entropy(probs, labels).item(), rel=1e-6)

    def test_losses_backpropagate(self):
        logits = Tensor(np.array([0.2, -0.4, 1.0]), requires_grad=True)
        loss = F.focal_cross_entropy(logits.sigmoid(), np.array([1.0, 0.0, 1.0]))
        loss.backward()
        assert logits.grad is not None
        assert np.all(np.isfinite(logits.grad))

    @given(st.lists(st.floats(0.01, 0.99), min_size=1, max_size=20),
           st.lists(st.integers(0, 1), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_losses_nonnegative(self, probs, labels):
        n = min(len(probs), len(labels))
        p = Tensor(np.array(probs[:n]))
        y = np.array(labels[:n], dtype=float)
        assert F.binary_cross_entropy(p, y).item() >= 0
        assert F.focal_cross_entropy(p, y).item() >= 0


class TestRegularization:
    def test_l2_matches_manual(self):
        params = [Tensor(np.array([1.0, 2.0]), requires_grad=True),
                  Tensor(np.array([[3.0]]), requires_grad=True)]
        value = F.l2_regularization(params, weight=0.1).item()
        assert value == pytest.approx(0.1 * (1 + 4 + 9))

    def test_l2_empty_params(self):
        assert F.l2_regularization([], weight=1.0).item() == 0.0

    def test_l2_gradient_is_two_w_times_weight(self):
        param = Tensor(np.array([2.0, -1.0]), requires_grad=True)
        F.l2_regularization([param], weight=0.5).backward()
        np.testing.assert_allclose(param.grad, [2.0, -1.0])
