"""Tests for the multi-level attention module (Eqs. 6-11) and its ablations."""

import numpy as np
import pytest

from repro.core.attention import (
    EdgeLevelAttention,
    FeatureProjection,
    MultiLevelAttention,
    SemanticCombination,
)
from repro.graph.schema import RelationSpec
from repro.ndarray.tensor import Tensor
from repro.sampling.base import SampledNode


def _rng():
    return np.random.default_rng(0)


class TestFeatureProjection:
    def test_output_shape(self):
        projection = FeatureProjection(hidden_dim=4)
        slots = Tensor(_rng().normal(size=(5, 3, 4)))
        focal = Tensor(_rng().normal(size=4))
        out = projection(slots, focal)
        assert out.shape == (5, 4)

    def test_disabled_is_mean_of_slots(self):
        projection = FeatureProjection(hidden_dim=4, enabled=False)
        slots_value = _rng().normal(size=(3, 3, 4))
        out = projection(Tensor(slots_value), Tensor(np.zeros(4)))
        np.testing.assert_allclose(out.numpy(), slots_value.mean(axis=1))

    def test_focal_changes_projection(self):
        projection = FeatureProjection(hidden_dim=4)
        slots = Tensor(_rng().normal(size=(2, 3, 4)))
        out_a = projection(slots, Tensor(np.array([3.0, 0.0, 0.0, 0.0])))
        out_b = projection(slots, Tensor(np.array([0.0, 0.0, 0.0, 3.0])))
        assert not np.allclose(out_a.numpy(), out_b.numpy())

    def test_amplifies_focal_relevant_slot(self):
        """The slot most aligned with the focal should dominate the output."""
        projection = FeatureProjection(hidden_dim=2)
        aligned = np.array([10.0, 0.0])
        orthogonal = np.array([0.0, 1.0])
        slots = Tensor(np.stack([[aligned, orthogonal, orthogonal]], axis=0))
        focal = Tensor(np.array([10.0, 0.0]))
        out = projection(slots, focal).numpy()[0]
        assert out[0] > out[1]


class TestEdgeLevelAttention:
    def test_output_shape_and_weights_sum(self):
        attention = EdgeLevelAttention(hidden_dim=4, rng=_rng())
        ego = Tensor(_rng().normal(size=4))
        neighbors = Tensor(_rng().normal(size=(6, 4)))
        focal = Tensor(_rng().normal(size=4))
        out = attention(ego, neighbors, focal)
        assert out.shape == (4,)
        weights = attention.attention_weights(ego, neighbors, focal)
        assert weights.shape == (6,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights >= 0)

    def test_disabled_is_mean_pooling(self):
        attention = EdgeLevelAttention(hidden_dim=4, enabled=False)
        neighbors_value = _rng().normal(size=(5, 4))
        out = attention(Tensor(np.zeros(4)), Tensor(neighbors_value),
                        Tensor(np.zeros(4)))
        np.testing.assert_allclose(out.numpy(), neighbors_value.mean(axis=0))

    def test_focal_dependence(self):
        attention = EdgeLevelAttention(hidden_dim=4, rng=_rng())
        ego = Tensor(_rng().normal(size=4))
        neighbors = Tensor(_rng().normal(size=(5, 4)))
        w_a = attention.attention_weights(ego, neighbors,
                                          Tensor(np.array([5.0, 0, 0, 0])))
        w_b = attention.attention_weights(ego, neighbors,
                                          Tensor(np.array([0, 0, 0, 5.0])))
        assert not np.allclose(w_a, w_b)

    def test_gradients_reach_attention_vector(self):
        attention = EdgeLevelAttention(hidden_dim=3, rng=_rng())
        out = attention(Tensor(np.ones(3)), Tensor(np.ones((4, 3))),
                        Tensor(np.ones(3)))
        out.sum().backward()
        assert attention.attention_vector.grad is not None


class TestSemanticCombination:
    def test_requires_at_least_one_type(self):
        combination = SemanticCombination(hidden_dim=4)
        with pytest.raises(ValueError):
            combination(Tensor(np.ones(4)), {})

    def test_single_type_passthrough(self):
        combination = SemanticCombination(hidden_dim=4)
        value = Tensor(np.arange(4.0))
        out = combination(Tensor(np.ones(4)), {"item": value})
        np.testing.assert_allclose(out.numpy(), value.numpy())

    def test_disabled_is_mean_over_types(self):
        combination = SemanticCombination(hidden_dim=2, enabled=False)
        per_type = {"a": Tensor(np.array([1.0, 1.0])),
                    "b": Tensor(np.array([3.0, 3.0]))}
        out = combination(Tensor(np.ones(2)), per_type)
        np.testing.assert_allclose(out.numpy(), [2.0, 2.0])

    def test_weights_are_cosine_similarities(self):
        combination = SemanticCombination(hidden_dim=2)
        ego = Tensor(np.array([1.0, 0.0]))
        per_type = {"aligned": Tensor(np.array([2.0, 0.0])),
                    "orthogonal": Tensor(np.array([0.0, 2.0]))}
        weights = combination.semantic_weights(ego, per_type)
        assert weights["aligned"] == pytest.approx(1.0)
        assert weights["orthogonal"] == pytest.approx(0.0, abs=1e-9)

    def test_aligned_type_dominates_output(self):
        combination = SemanticCombination(hidden_dim=2)
        ego = Tensor(np.array([1.0, 0.0]))
        per_type = {"aligned": Tensor(np.array([1.0, 0.0])),
                    "orthogonal": Tensor(np.array([0.0, 1.0]))}
        out = combination(ego, per_type).numpy()
        assert out[0] > out[1]


def _two_hop_tree():
    spec_ui = RelationSpec("user", "click", "item")
    spec_iq = RelationSpec("item", "query_click", "query")
    root = SampledNode("user", 0)
    child_a = SampledNode("item", 1)
    child_b = SampledNode("item", 2)
    grandchild = SampledNode("query", 0)
    child_a.add_child(spec_iq, grandchild, 1.0)
    root.add_child(spec_ui, child_a, 0.9)
    root.add_child(spec_ui, child_b, 0.5)
    return root


class TestMultiLevelAttention:
    def _projected(self, tree, dim=4):
        rng = np.random.default_rng(3)
        return {id(node): Tensor(rng.normal(size=dim), requires_grad=False)
                for node in tree.iter_nodes()}

    def test_aggregates_two_hop_tree(self):
        attention = MultiLevelAttention(hidden_dim=4, rng=_rng())
        tree = _two_hop_tree()
        out = attention(tree, self._projected(tree), Tensor(np.ones(4)))
        assert out.shape == (4,)

    def test_leaf_returns_projected_vector(self):
        attention = MultiLevelAttention(hidden_dim=4, rng=_rng())
        leaf = SampledNode("item", 5)
        projected = {id(leaf): Tensor(np.arange(4.0))}
        out = attention(leaf, projected, Tensor(np.ones(4)))
        np.testing.assert_allclose(out.numpy(), np.arange(4.0))

    def test_ablation_flags_change_output(self):
        tree = _two_hop_tree()
        focal = Tensor(np.ones(4))
        full = MultiLevelAttention(4, rng=np.random.default_rng(7))
        no_edge = MultiLevelAttention(4, use_edge_attention=False,
                                      rng=np.random.default_rng(7))
        projected = self._projected(tree)
        out_full = full(tree, projected, focal).numpy()
        out_no_edge = no_edge(tree, projected, focal).numpy()
        assert not np.allclose(out_full, out_no_edge)

    def test_edge_weights_for_returns_per_type_distributions(self):
        attention = MultiLevelAttention(hidden_dim=4, rng=_rng())
        tree = _two_hop_tree()
        weights = attention.edge_weights_for(tree, self._projected(tree),
                                             Tensor(np.ones(4)))
        assert "item" in weights
        assert weights["item"].sum() == pytest.approx(1.0)
