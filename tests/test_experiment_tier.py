"""Acceptance tests for the serving-time experimentation tier (ISSUE 9).

The guarantees pinned here:

* **Spec surface** — ``ExperimentTierSpec`` validates every mode (plain
  split, shadow, canary) and JSON-round-trips as a section of
  ``ExperimentSpec``.
* **Deterministic splits** — ``TrafficSplitter`` is a pure function of
  ``(salt, fractions, user_id)``: a golden vector pins the splitmix64
  assignment across processes and interpreter runs, re-instantiation is
  stable, and ramping a fraction only ever moves users *into* the
  challenger.
* **Shadow bit-identity** — a two-variant shadow daemon answers the same
  pipelined request stream with replies byte-identical (modulo the
  measured ``latency_ms``) to a single-version daemon over an identically
  built server, while the challenger scores every request off the path.
* **Mixed-variant accounting** — under an open-loop load run with zero
  shed, the per-variant ``assigned``/``served`` rows reconcile exactly
  with the splitter's deterministic assignment of the generator's user
  stream.
* **Canary rollback** — a challenger whose guardrail metric regresses is
  deterministically rolled back: traffic pins to control, the reason is
  recorded, and the whole transition is visible through the daemon's
  ``stats`` verb.
"""

import numpy as np
import pytest

from repro.api.spec import DaemonSpec, ExperimentSpec, ExperimentTierSpec
from repro.baselines import STAMPModel
from repro.serving import (
    DaemonClient,
    ExperimentTier,
    OnlineServer,
    OpenLoopLoadGenerator,
    ServingDaemon,
    TrafficSplitter,
    VariantSet,
)


@pytest.fixture(scope="module")
def control_model(tiny_graph):
    return STAMPModel(tiny_graph, embedding_dim=8, seed=0)


@pytest.fixture(scope="module")
def challenger_model(tiny_graph):
    return STAMPModel(tiny_graph, embedding_dim=8, seed=1)


def make_server(model) -> OnlineServer:
    """A freshly warmed server; identical construction => identical replies."""
    server = OnlineServer(model, cache_capacity=5, ann_cells=4, ann_nprobe=2)
    server.warm_caches(range(5), range(5))
    server.build_inverted_index(range(5))
    return server


def make_tier(control, challenger, **spec_overrides) -> ExperimentTier:
    defaults = dict(variants=("control", "challenger"), salt="tier-test")
    defaults.update(spec_overrides)
    spec = ExperimentTierSpec(**defaults)
    return ExperimentTier({"control": control, "challenger": challenger},
                          spec)


def daemon_spec(**overrides) -> DaemonSpec:
    defaults = dict(max_batch_size=4, max_wait_ms=5.0, max_queue_depth=16)
    defaults.update(overrides)
    return DaemonSpec(**defaults)


# --------------------------------------------------------------------------- #
# ExperimentTierSpec validation and round-trip
# --------------------------------------------------------------------------- #
class TestSpec:
    def test_default_section_is_valid_and_roundtrips(self):
        spec = ExperimentSpec()
        spec.validate()
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt.experiment == spec.experiment == ExperimentTierSpec()

    def test_configured_section_roundtrips_via_json(self):
        spec = ExperimentSpec(experiment=ExperimentTierSpec(
            variants=("control", "challenger"), salt="exp-9",
            canary_steps=(0.05, 0.25, 0.5), guardrail_metric="rpm",
            guardrail_drop=0.3, min_impressions=100, step_impressions=50))
        spec.validate()
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt.experiment == spec.experiment
        assert rebuilt.experiment.variants == ("control", "challenger")
        assert rebuilt.experiment.canary_steps == (0.05, 0.25, 0.5)

    def test_plain_split_needs_matching_normalized_fractions(self):
        good = ExperimentTierSpec(variants=("a", "b"), fractions=(0.9, 0.1))
        good.validate()
        for fractions in [(0.9,), (0.5, 0.2), (1.2, -0.2)]:
            with pytest.raises(ValueError):
                ExperimentTierSpec(variants=("a", "b"),
                                   fractions=fractions).validate()

    @pytest.mark.parametrize("kwargs", [
        dict(variants=("solo",)),
        dict(variants=("a", "a"), fractions=(0.5, 0.5)),
        dict(variants=("a", "b"), shadow=True, fractions=(0.5, 0.5)),
        dict(variants=("a", "b"), shadow=True, canary_steps=(0.1,)),
        dict(variants=("a", "b", "c"), canary_steps=(0.1,)),
        dict(variants=("a", "b"), canary_steps=(0.5, 0.5)),
        dict(variants=("a", "b"), canary_steps=(0.1,), guardrail_metric="x"),
        dict(variants=("a", "b"), canary_steps=(0.1,), guardrail_drop=1.5),
        dict(variants=("a", "b"), canary_steps=(0.1,), min_impressions=0),
        dict(fractions=(1.0,)),            # knobs without variants
    ])
    def test_invalid_modes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentTierSpec(**kwargs).validate()


# --------------------------------------------------------------------------- #
# TrafficSplitter determinism
# --------------------------------------------------------------------------- #
class TestTrafficSplitter:
    def test_golden_assignment_vector(self):
        """Process-independence pin: splitmix64 over (salt, user) is frozen."""
        splitter = TrafficSplitter("golden", ("a", "b"), (0.5, 0.5))
        np.testing.assert_allclose(
            splitter.uniform_batch(range(4)),
            [0.264963950504, 0.087210846705, 0.341535592135, 0.676939935304],
            atol=1e-12)
        np.testing.assert_array_equal(
            splitter.assign_batch(range(16)),
            [0, 0, 0, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0, 0, 0, 1])

    def test_reinstantiation_is_stable(self):
        users = np.arange(500)
        first = TrafficSplitter("s", ("a", "b"), (0.7, 0.3))
        second = TrafficSplitter("s", ("a", "b"), (0.7, 0.3))
        np.testing.assert_array_equal(first.assign_batch(users),
                                      second.assign_batch(users))

    def test_ramp_is_monotone(self):
        """Raising the challenger fraction never reassigns its users away."""
        users = np.arange(2000)
        splitter = TrafficSplitter("ramp", ("control", "challenger"),
                                   (0.95, 0.05))
        before = splitter.assign_batch(users) == 1
        splitter.set_fractions((0.7, 0.3))
        after = splitter.assign_batch(users) == 1
        assert np.all(after[before])
        assert after.sum() > before.sum()

    def test_salt_reshuffles(self):
        users = np.arange(1000)
        one = TrafficSplitter("salt-1", ("a", "b"), (0.5, 0.5))
        two = TrafficSplitter("salt-2", ("a", "b"), (0.5, 0.5))
        assert np.any(one.assign_batch(users) != two.assign_batch(users))

    def test_fraction_validation(self):
        splitter = TrafficSplitter("v", ("a", "b"), (0.5, 0.5))
        for bad in [(0.5,), (0.5, 0.6), (-0.1, 1.1)]:
            with pytest.raises(ValueError):
                splitter.set_fractions(bad)
        with pytest.raises(ValueError):
            TrafficSplitter("", ("a", "b"), (0.5, 0.5))


# --------------------------------------------------------------------------- #
# VariantSet / ExperimentTier construction and feedback
# --------------------------------------------------------------------------- #
class TestTier:
    def test_variant_set_contract(self, control_model):
        server = make_server(control_model)
        with pytest.raises(ValueError):
            VariantSet({"only": server})
        with pytest.raises(ValueError):
            VariantSet({"a": server, "b": object()})
        variants = VariantSet({"a": server, "b": server})
        assert variants.control == "a"
        assert variants.server_for("b") is server

    def test_tier_rejects_name_mismatch(self, control_model):
        server = make_server(control_model)
        spec = ExperimentTierSpec(variants=("control", "challenger"),
                                  fractions=(0.5, 0.5))
        with pytest.raises(ValueError):
            ExperimentTier({"control": server, "other": server}, spec)

    def test_feedback_validation(self, control_model):
        server = make_server(control_model)
        tier = make_tier(server, server, fractions=(0.5, 0.5))
        with pytest.raises(ValueError):
            tier.record_feedback(0, impressions=1, clicks=2)
        with pytest.raises(ValueError):
            tier.record_feedback(0, impressions=-1)
        with pytest.raises(ValueError):
            tier.record_feedback(0, variant="nope")
        name = tier.record_feedback(3, impressions=10, clicks=1, revenue=2.0)
        assert name in ("control", "challenger")
        assert tier.metrics[name].impressions == 10
        assert tier.counters[name].feedback == 1


# --------------------------------------------------------------------------- #
# Shadow mode: primary replies bit-identical to single-version serving
# --------------------------------------------------------------------------- #
class TestShadowBitIdentity:
    REQUESTS = [(u % 12, (3 * u) % 10) for u in range(24)]

    def _drive(self, daemon: ServingDaemon) -> list:
        """Pipeline the fixed stream through one connection; sort by echo id."""
        with daemon, DaemonClient(daemon.host, daemon.port) as client:
            for i, (user, query) in enumerate(self.REQUESTS):
                client.send({"op": "serve", "user_id": user,
                             "query_id": query, "k": 5, "id": i})
            replies = [client.recv() for _ in self.REQUESTS]
        for reply in replies:
            assert reply["ok"] is True
            reply.pop("latency_ms")      # measured, not computed
        return sorted(replies, key=lambda r: r["id"])

    def test_primary_replies_identical_to_single_version(
            self, control_model, challenger_model):
        # max_batch_size=1 pins the batch composition: arrival-timing
        # chunking cannot move batch boundaries (and with them the cache
        # refresh points), so the two runs are comparable bit for bit.
        single = self._drive(ServingDaemon(
            make_server(control_model),
            spec=daemon_spec(max_batch_size=1, max_queue_depth=64)))
        tier = make_tier(make_server(control_model),
                         make_server(challenger_model), shadow=True)
        shadow_daemon = ServingDaemon(
            spec=daemon_spec(max_batch_size=1, max_queue_depth=64),
            experiment=tier)
        shadowed = self._drive(shadow_daemon)
        assert shadowed == single
        # The challenger scored every admitted request off the reply path
        # (the drain flushes its final partial batch) and answered none.
        counters = tier.counters["challenger"]
        assert counters.shadow_served == len(self.REQUESTS)
        assert counters.served == counters.assigned == 0
        assert tier.counters["control"].served == len(self.REQUESTS)

    def test_shadow_listener_sees_results(self, control_model,
                                          challenger_model):
        tier = make_tier(make_server(control_model),
                         make_server(challenger_model), shadow=True)
        seen = []
        tier.on_shadow_result = lambda name, result: seen.append(
            (name, result.user_id, result.query_id))
        daemon = ServingDaemon(spec=daemon_spec(), experiment=tier)
        with daemon, DaemonClient(daemon.host, daemon.port) as client:
            for user, query in self.REQUESTS[:8]:
                assert client.serve(user, query, k=5)["ok"] is True
        assert sorted(seen) == sorted(
            ("challenger", user, query) for user, query in self.REQUESTS[:8])


# --------------------------------------------------------------------------- #
# Mixed-variant load: stats reconcile with the loadgen's request stream
# --------------------------------------------------------------------------- #
class TestMixedVariantLoad:
    def test_per_variant_stats_reconcile_with_loadgen(
            self, tiny_graph, control_model, challenger_model):
        tier = make_tier(make_server(control_model),
                         make_server(challenger_model),
                         fractions=(0.5, 0.5))
        num_users = tiny_graph.num_nodes["user"]
        num_queries = tiny_graph.num_nodes["query"]
        seed, n = 5, 60
        daemon = ServingDaemon(spec=daemon_spec(max_queue_depth=256),
                               experiment=tier)
        with daemon:
            generator = OpenLoopLoadGenerator(
                daemon.host, daemon.port, qps=400.0, num_requests=n,
                num_users=num_users, num_queries=num_queries, seed=seed)
            report = generator.run()
        assert report.shed == report.quota == report.errors == 0
        assert report.served == n
        # The generator's user stream is reproducible, so the deterministic
        # splitter predicts the per-variant assignment exactly.
        users = np.random.default_rng(seed + 1).integers(0, num_users, size=n)
        expected = np.bincount(tier.splitter.assign_batch(users),
                               minlength=2)
        stats = daemon.stats_dict()
        rows = stats["experiment"]["variants"]
        assert rows["control"]["assigned"] == expected[0]
        assert rows["challenger"]["assigned"] == expected[1]
        assert rows["control"]["served"] == expected[0]
        assert rows["challenger"]["served"] == expected[1]
        assert stats["served"] == n
        # Each lane's batcher answered exactly its variant's requests.
        assert rows["control"]["batcher"]["served"] == expected[0]
        assert rows["challenger"]["batcher"]["served"] == expected[1]


# --------------------------------------------------------------------------- #
# Canary rollback
# --------------------------------------------------------------------------- #
class TestCanaryRollback:
    def feed(self, record_feedback) -> None:
        """A regressing challenger: control clicks, challenger does not."""
        for _ in range(8):
            record_feedback(0, impressions=10, clicks=5, revenue=5.0,
                            variant="control")
            record_feedback(1, impressions=10, clicks=0, revenue=0.0,
                            variant="challenger")

    def make_canary_tier(self, control_model, challenger_model):
        return make_tier(make_server(control_model),
                         make_server(challenger_model),
                         canary_steps=(0.1, 0.5), guardrail_metric="ctr",
                         guardrail_drop=0.2, min_impressions=50,
                         step_impressions=50)

    def test_rollback_is_deterministic(self, control_model, challenger_model):
        tiers = [self.make_canary_tier(control_model, challenger_model)
                 for _ in range(2)]
        for tier in tiers:
            self.feed(tier.record_feedback)
        first, second = (tier.stats_dict() for tier in tiers)
        assert first == second
        assert first["canary"]["state"] == "rolled_back"
        assert first["canary"]["rollback_reason"]
        assert first["fractions"] == {"control": 1.0, "challenger": 0.0}

    def test_rollback_pins_traffic_and_shows_in_stats(
            self, control_model, challenger_model):
        tier = self.make_canary_tier(control_model, challenger_model)
        daemon = ServingDaemon(spec=daemon_spec(), experiment=tier)
        with daemon, DaemonClient(daemon.host, daemon.port) as client:
            before = client.stats()["experiment"]
            assert before["canary"]["state"] == "ramping"
            assert before["fractions"]["challenger"] == pytest.approx(0.1)
            self.feed(lambda user, **kw: client.feedback(user, **kw))
            after = client.stats()["experiment"]
            assert after["canary"]["state"] == "rolled_back"
            assert "ctr regressed" in after["canary"]["rollback_reason"]
            assert after["fractions"] == {"control": 1.0, "challenger": 0.0}
            # Post-rollback, every user routes to control.
            for user in range(20):
                assert client.serve(user, user % 5, k=5)["ok"] is True
            final = client.stats()["experiment"]["variants"]
        assert final["challenger"]["assigned"] == 0
        assert final["control"]["assigned"] == 20

    def test_healthy_challenger_ramps_to_completion(self, control_model,
                                                    challenger_model):
        tier = self.make_canary_tier(control_model, challenger_model)
        for _ in range(10):     # 100 impressions: both 50-impression steps
            tier.record_feedback(0, impressions=10, clicks=5, revenue=5.0,
                                 variant="control")
            tier.record_feedback(1, impressions=10, clicks=5, revenue=5.0,
                                 variant="challenger")
        stats = tier.stats_dict()["canary"]
        assert stats["state"] == "completed"
        assert tier.splitter.fractions == (0.5, 0.5)


# --------------------------------------------------------------------------- #
# Wire protocol edges
# --------------------------------------------------------------------------- #
class TestFeedbackVerb:
    def test_feedback_without_tier_is_400(self, control_model):
        daemon = ServingDaemon(make_server(control_model),
                               spec=daemon_spec())
        with daemon, DaemonClient(daemon.host, daemon.port) as client:
            reply = client.feedback(0, impressions=1)
        assert reply["ok"] is False and reply["code"] == 400

    def test_malformed_feedback_is_400(self, control_model,
                                       challenger_model):
        tier = make_tier(make_server(control_model),
                         make_server(challenger_model),
                         fractions=(0.5, 0.5))
        daemon = ServingDaemon(spec=daemon_spec(), experiment=tier)
        with daemon, DaemonClient(daemon.host, daemon.port) as client:
            missing = client.request({"op": "feedback"})
            bad_variant = client.feedback(0, variant="nope")
            good = client.feedback(0, impressions=2, clicks=1, revenue=1.5)
        assert missing["ok"] is False and missing["code"] == 400
        assert bad_variant["ok"] is False and bad_variant["code"] == 400
        assert good["ok"] is True and good["variant"] in ("control",
                                                          "challenger")

    def test_daemon_requires_server_or_tier(self):
        with pytest.raises(ValueError):
            ServingDaemon(spec=daemon_spec())

    def test_daemon_rejects_foreign_control_server(self, control_model,
                                                   challenger_model):
        tier = make_tier(make_server(control_model),
                         make_server(challenger_model),
                         fractions=(0.5, 0.5))
        with pytest.raises(ValueError):
            ServingDaemon(make_server(control_model), spec=daemon_spec(),
                          experiment=tier)
