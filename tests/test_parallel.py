"""Tests for the multi-core parallel execution engine (repro.parallel).

The load-bearing contract: ``backend="serial"`` and ``backend="shared"``
(any worker count) are **bit-identical** under a fixed seed — draws are
keyed per ``(seed, shard, graph version, batch_id)`` and merged in shard
order, so scheduling can never influence an output bit.  Lifecycle safety
rides along: a worker crash mid-batch raises instead of hanging, and a
closed engine leaves no shared-memory segment behind in ``/dev/shm``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro.graph.alias as alias_module
import repro.serving.ann as ann_module
from repro.data import SyntheticTaobaoConfig, generate_taobao_dataset
from repro.graph import ShardedGraphStore
from repro.graph.alias import BatchedAliasTable
from repro.graph.update import GraphMutator
from repro.parallel import (
    ParallelEngine,
    SerialExecutor,
    SharedArray,
    WorkerCrashError,
    WorkerPool,
    WorkerTaskError,
    rng_stream,
)
from repro.serving.ann import IVFIndex
from repro.serving.sharding import ShardedIndex


def _assert_batches_equal(a, b):
    """Two SubgraphBatches must match array-for-array."""
    np.testing.assert_array_equal(a.ego_ids, b.ego_ids)
    assert a.specs == b.specs
    assert len(a.layers) == len(b.layers)
    for la, lb in zip(a.layers, b.layers):
        np.testing.assert_array_equal(la.parents, lb.parents)
        np.testing.assert_array_equal(la.rel_ids, lb.rel_ids)
        np.testing.assert_array_equal(la.node_ids, lb.node_ids)
        np.testing.assert_array_equal(la.weights, lb.weights)


@pytest.fixture()
def fresh_dataset():
    """A small dataset whose graph tests may freely mutate."""
    config = SyntheticTaobaoConfig(
        num_users=20, num_queries=16, num_items=40, num_categories=4,
        sessions_per_user=3.0, clicks_per_session=3, seed=11)
    return generate_taobao_dataset(config)


# ---------------------------------------------------------------------- #
# RNG streams
# ---------------------------------------------------------------------- #
class TestRngStream:
    def test_same_key_same_stream(self):
        a = rng_stream(3, 1, 0, 7).random(8)
        b = rng_stream(3, 1, 0, 7).random(8)
        np.testing.assert_array_equal(a, b)

    def test_any_key_component_changes_the_stream(self):
        base = rng_stream(3, 1, 0, 7).random(8)
        for key in ((4, 1, 0, 7), (3, 2, 0, 7), (3, 1, 1, 7), (3, 1, 0, 8)):
            assert not np.array_equal(base, rng_stream(*key).random(8))


# ---------------------------------------------------------------------- #
# Shared arrays
# ---------------------------------------------------------------------- #
class TestSharedArray:
    def test_roundtrip_and_unlink(self):
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        shared = SharedArray(data)
        np.testing.assert_array_equal(shared.array(), data)
        path = f"/dev/shm/{shared.name}"
        assert os.path.exists(path)
        shared.close()
        assert not os.path.exists(path)
        shared.close()   # idempotent

    def test_empty_array_roundtrip(self):
        shared = SharedArray(np.empty(0, dtype=np.int64))
        assert shared.array().size == 0
        shared.close()


# ---------------------------------------------------------------------- #
# Worker pool lifecycle
# ---------------------------------------------------------------------- #
class TestWorkerPool:
    def test_map_returns_results_in_order(self):
        with WorkerPool(2) as pool:
            payloads = [{"value": i} for i in range(8)]
            assert pool.map("echo", payloads) == payloads

    def test_task_error_carries_remote_traceback(self):
        with WorkerPool(1) as pool:
            with pytest.raises(WorkerTaskError, match="KeyError"):
                pool.map("alias_build_rows", [{"bogus": 1}])
            # The pool survives a task error: next task still runs.
            assert pool.map("echo", [{"ok": True}]) == [{"ok": True}]

    def test_worker_crash_raises_instead_of_hanging(self):
        pool = WorkerPool(2)
        try:
            tickets = [pool.submit("echo", {"v": 1}),
                       pool.submit("crash", {"code": 3}),
                       pool.submit("echo", {"v": 2})]
            start = time.perf_counter()
            with pytest.raises(WorkerCrashError, match="exited"):
                pool.gather(tickets)
            assert time.perf_counter() - start < 30.0
            # A broken pool refuses further work instead of hanging too.
            with pytest.raises(WorkerCrashError):
                pool.submit("echo", {"v": 3})
        finally:
            pool.shutdown()

    def test_shutdown_stops_workers_and_is_idempotent(self):
        pool = WorkerPool(2)
        pool.map("echo", [{"v": 1}])
        workers = list(pool._workers)
        pool.shutdown()
        assert all(not worker.is_alive() for worker in workers)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit("echo", {})

    def test_unknown_task_rejected(self):
        pool = WorkerPool(1)
        with pytest.raises(KeyError):
            pool.submit("no-such-task", {})
        pool.shutdown()

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            ParallelEngine(None, num_workers=0)
        with pytest.raises(ValueError):
            ParallelEngine(None, backend="threads")

    def test_worker_cache_evicts_superseded_slot_versions(self):
        """A re-exported slot unmaps the old view's attachments first."""
        from repro.parallel.pool import WorkerCache

        closed = []

        class FakeAttachment:
            def close(self):
                closed.append(self)

        cache = WorkerCache()
        built = []
        first = cache.view("slot", 1,
                           lambda track: built.append(
                               track(FakeAttachment())) or "v1")
        assert first == "v1"
        again = cache.view("slot", 1, lambda track: "never-built")
        assert again == "v1" and not closed
        fresh = cache.view("slot", 2, lambda track: "v2")
        assert fresh == "v2"
        assert closed == built
        cache.close()
        assert len(closed) == 1   # v2 tracked nothing


# ---------------------------------------------------------------------- #
# Sampling equivalence: serial == shared == any worker count
# ---------------------------------------------------------------------- #
class TestEngineSampling:
    def test_serial_and_shared_backends_are_bitwise_equal(self, tiny_graph):
        egos = np.arange(tiny_graph.num_nodes["user"])
        serial = ParallelEngine(tiny_graph, num_workers=2, backend="serial",
                                num_shards=4)
        reference = serial.sample_subgraph_batch(
            "user", egos, (4, 2), seed=5, batch_id=0)
        np.testing.assert_array_equal(reference.ego_ids, egos)
        assert reference.num_edges() > 0
        for workers in (1, 2, 3):
            with ParallelEngine(tiny_graph, num_workers=workers,
                                backend="shared", num_shards=4) as shared:
                batch = shared.sample_subgraph_batch(
                    "user", egos, (4, 2), seed=5, batch_id=0)
                _assert_batches_equal(reference, batch)

    def test_default_shard_plan_is_worker_count_invariant(self, tiny_graph):
        """Without an explicit num_shards, results must still not depend on
        the worker count — the shard plan defaults to a fixed width."""
        from repro.serving.ann import IVFIndex as _IVF

        egos = np.arange(20)
        queries = np.random.default_rng(4).standard_normal((17, 8))
        index = _IVF(num_cells=4, nprobe=2, seed=0).build(
            np.random.default_rng(5).standard_normal((60, 8)))
        reference = None
        for workers in (1, 2, 3):
            engine = ParallelEngine(tiny_graph, num_workers=workers,
                                    backend="serial")
            engine.attach_index(index)
            batch = engine.sample_subgraph_batch("user", egos, (3, 2),
                                                 seed=9, batch_id=0)
            hits = engine.search_batch(queries, k=5)
            if reference is None:
                reference = (batch, hits)
                continue
            _assert_batches_equal(reference[0], batch)
            np.testing.assert_array_equal(reference[1][0], hits[0])
            np.testing.assert_array_equal(reference[1][1], hits[1])

    def test_keys_separate_batches_and_seeds(self, tiny_graph):
        engine = ParallelEngine(tiny_graph, num_workers=2, backend="serial",
                                num_shards=4)
        egos = np.arange(10)
        one = engine.sample_subgraph_batch("user", egos, (4, 2), seed=5,
                                           batch_id=0)
        same = engine.sample_subgraph_batch("user", egos, (4, 2), seed=5,
                                            batch_id=0)
        other_batch = engine.sample_subgraph_batch("user", egos, (4, 2),
                                                   seed=5, batch_id=1)
        other_seed = engine.sample_subgraph_batch("user", egos, (4, 2),
                                                  seed=6, batch_id=0)
        _assert_batches_equal(one, same)
        assert not np.array_equal(one.layers[0].node_ids,
                                  other_batch.layers[0].node_ids)
        assert not np.array_equal(one.layers[0].node_ids,
                                  other_seed.layers[0].node_ids)

    def test_empty_ego_batch(self, tiny_graph):
        engine = ParallelEngine(tiny_graph, num_workers=2, backend="serial")
        batch = engine.sample_subgraph_batch("user", [], (3, 2), seed=0,
                                             batch_id=0)
        assert len(batch) == 0 and batch.layers == []

    def test_trees_keep_input_ego_order(self, tiny_graph):
        engine = ParallelEngine(tiny_graph, num_workers=3, backend="serial",
                                num_shards=5)
        egos = np.array([9, 2, 17, 4, 11])
        batch = engine.sample_subgraph_batch("user", egos, (3, 2), seed=1,
                                             batch_id=0)
        trees = batch.to_trees()
        assert [tree.node_id for tree in trees] == egos.tolist()
        assert all(tree.node_type == "user" for tree in trees)

    def test_streaming_update_moves_the_stream_and_the_export(
            self, fresh_dataset):
        graph = fresh_dataset.graph
        egos = np.arange(12)
        with ParallelEngine(graph, num_workers=2, backend="shared",
                            num_shards=3) as shared:
            serial = ParallelEngine(graph, num_workers=2, backend="serial",
                                    num_shards=3)
            before = shared.sample_subgraph_batch("user", egos, (3, 2),
                                                  seed=2, batch_id=0)
            GraphMutator(graph, seed=0).apply_sessions(
                [(1, 2, [3, 5]), (4, 0, [7])])
            after_shared = shared.sample_subgraph_batch(
                "user", egos, (3, 2), seed=2, batch_id=0)
            after_serial = serial.sample_subgraph_batch(
                "user", egos, (3, 2), seed=2, batch_id=0)
            # Same key, new graph version: a fresh stream over the fresh
            # snapshot, still bit-identical across backends.
            _assert_batches_equal(after_shared, after_serial)
            assert not np.array_equal(before.layers[0].node_ids,
                                      after_shared.layers[0].node_ids)


# ---------------------------------------------------------------------- #
# Serving-side search equivalence
# ---------------------------------------------------------------------- #
class TestEngineSearch:
    @pytest.fixture()
    def corpus(self):
        rng = np.random.default_rng(3)
        return rng.standard_normal((200, 16))

    @pytest.mark.parametrize("build_index", [
        lambda corpus: IVFIndex(num_cells=8, nprobe=3, seed=0,
                                dtype=np.float32).build(corpus),
        lambda corpus: ShardedIndex(
            num_shards=3,
            index_factory=lambda e, i: IVFIndex(
                num_cells=4, nprobe=2, seed=0,
                dtype=np.float32).build(e, i),
            dtype=np.float32).build(corpus),
    ])
    def test_shared_search_matches_serial_bitwise(self, tiny_graph, corpus,
                                                  build_index):
        queries = np.random.default_rng(9).standard_normal((23, 16))
        index = build_index(corpus)
        serial = ParallelEngine(tiny_graph, num_workers=2, backend="serial")
        serial.attach_index(index)
        reference_ids, reference_scores = serial.search_batch(queries, k=7)
        assert reference_ids.shape == (23, 7)
        with ParallelEngine(tiny_graph, num_workers=2,
                            backend="shared") as shared:
            shared.attach_index(index)
            ids, scores = shared.search_batch(queries, k=7)
        np.testing.assert_array_equal(reference_ids, ids)
        np.testing.assert_array_equal(reference_scores, scores)

    def test_search_requires_an_attached_index(self, tiny_graph):
        engine = ParallelEngine(tiny_graph, num_workers=2, backend="serial")
        with pytest.raises(RuntimeError, match="attach_index"):
            engine.search_batch(np.zeros((2, 4)), k=3)


# ---------------------------------------------------------------------- #
# Scoped rebuilds through an executor
# ---------------------------------------------------------------------- #
def _weighted_csr(rng, num_rows=400, avg_degree=6):
    degrees = rng.integers(1, avg_degree * 2, size=num_rows)
    indptr = np.concatenate(([0], np.cumsum(degrees))).astype(np.int64)
    weights = rng.random(int(indptr[-1])) + 0.05
    return indptr, weights


class TestExecutorScopedRebuilds:
    def test_alias_rebuild_with_executor_is_bitwise_equal(self, monkeypatch):
        monkeypatch.setattr(alias_module, "MIN_PARALLEL_REBUILD_ROWS", 1)
        rng = np.random.default_rng(0)
        indptr, weights = _weighted_csr(rng)
        base = BatchedAliasTable(indptr, weights)
        new_weights = weights.copy()
        touched = rng.choice(indptr.size - 1, size=60, replace=False)
        for row in touched:
            new_weights[indptr[row]:indptr[row + 1]] += rng.random(
                int(indptr[row + 1] - indptr[row]))
        plain = base.rebuilt(indptr, new_weights, touched)
        serial = base.rebuilt(indptr, new_weights, touched,
                              executor=SerialExecutor(3))
        np.testing.assert_array_equal(plain._prob, serial._prob)
        np.testing.assert_array_equal(plain._alias, serial._alias)
        with WorkerPool(2) as pool:
            pooled = base.rebuilt(indptr, new_weights, touched, executor=pool)
        np.testing.assert_array_equal(plain._prob, pooled._prob)
        np.testing.assert_array_equal(plain._alias, pooled._alias)

    def test_ivf_rebuild_with_executor_is_bitwise_equal(self, monkeypatch):
        monkeypatch.setattr(ann_module, "MIN_PARALLEL_ASSIGN_ROWS", 1)
        rng = np.random.default_rng(1)
        corpus = rng.standard_normal((150, 8))
        index = IVFIndex(num_cells=6, nprobe=2, seed=0,
                         dtype=np.float32).build(corpus)
        grown = np.vstack([corpus, rng.standard_normal((30, 8))])
        rows = rng.choice(150, size=40, replace=False)
        plain = index.rebuilt(grown, rows)
        serial = index.rebuilt(grown, rows, executor=SerialExecutor(3))
        with WorkerPool(2) as pool:
            pooled = index.rebuilt(grown, rows, executor=pool)
        for fresh in (serial, pooled):
            assert len(fresh._cells) == len(plain._cells)
            for a, b in zip(plain._cells, fresh._cells):
                np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------- #
# ShardedGraphStore integration
# ---------------------------------------------------------------------- #
class TestShardedStoreParallel:
    def test_parallel_sampling_keeps_accounting_and_equivalence(
            self, tiny_graph):
        serial_store = ShardedGraphStore(tiny_graph, num_shards=4, seed=17)
        serial_store.attach_parallel(ParallelEngine(
            tiny_graph, num_workers=2, backend="serial",
            partitioner=serial_store.partitioner))
        egos = np.arange(16)
        reference = serial_store.sample_subgraph_batch(
            "user", egos, (3, 2), seed=3, batch_id=0)
        assert sum(s.requests for s in serial_store.server_stats()) > 0

        shared_store = ShardedGraphStore(tiny_graph, num_shards=4, seed=17)
        with ParallelEngine(tiny_graph, num_workers=2, backend="shared",
                            partitioner=shared_store.partitioner) as engine:
            shared_store.attach_parallel(engine)
            batch = shared_store.sample_subgraph_batch(
                "user", egos, (3, 2), seed=3, batch_id=0)
        _assert_batches_equal(reference, batch)
        assert ([s.requests for s in serial_store.server_stats()]
                == [s.requests for s in shared_store.server_stats()])

    def test_rng_path_still_works_without_seed(self, tiny_graph):
        store = ShardedGraphStore(tiny_graph, num_shards=2, seed=17)
        store.attach_parallel(ParallelEngine(tiny_graph, num_workers=2,
                                             backend="serial"))
        batch = store.sample_subgraph_batch(
            "user", np.arange(4), (3, 2), rng=np.random.default_rng(0))
        assert len(batch) == 4

    def test_engine_must_wrap_the_same_graph(self, tiny_graph, fresh_dataset):
        store = ShardedGraphStore(tiny_graph, num_shards=2)
        with pytest.raises(ValueError, match="different graph"):
            store.attach_parallel(ParallelEngine(fresh_dataset.graph,
                                                 num_workers=1,
                                                 backend="serial"))


# ---------------------------------------------------------------------- #
# Lifecycle: no leaked /dev/shm segments, workers die with the engine
# ---------------------------------------------------------------------- #
class TestEngineLifecycle:
    def test_close_releases_every_shared_block(self, tiny_graph):
        engine = ParallelEngine(tiny_graph, num_workers=2, backend="shared",
                                num_shards=2)
        engine.sample_subgraph_batch("user", np.arange(8), (3, 2), seed=0,
                                     batch_id=0)
        engine.attach_index(IVFIndex(num_cells=4, nprobe=2, seed=0).build(
            np.random.default_rng(0).standard_normal((50, 8))))
        names = engine.block_names
        assert names, "expected graph and index exports"
        assert all(os.path.exists(f"/dev/shm/{name}") for name in names)
        workers = list(engine._pool._workers)
        engine.close()
        assert not any(os.path.exists(f"/dev/shm/{name}") for name in names)
        assert all(not worker.is_alive() for worker in workers)
        engine.close()   # idempotent

    def test_serial_backend_owns_no_shared_memory(self, tiny_graph):
        engine = ParallelEngine(tiny_graph, num_workers=2, backend="serial")
        engine.sample_subgraph_batch("user", np.arange(4), (3, 2), seed=0,
                                     batch_id=0)
        assert engine.block_names == []
        engine.close()


# ---------------------------------------------------------------------- #
# Prefetched presampling dataloader
# ---------------------------------------------------------------------- #
class TestPrefetchedDataloader:
    def _loader(self, graph, engine, examples):
        from repro.graph.schema import NodeType
        from repro.training.dataloader import (
            ImpressionDataLoader,
            PresampleConfig,
        )
        return ImpressionDataLoader(
            examples, batch_size=16, shuffle=True, seed=4,
            presample=PresampleConfig(graph=graph, fanouts=(3, 2),
                                      user_type=NodeType.USER,
                                      query_type=NodeType.QUERY,
                                      seed=8, engine=engine))

    def test_prefetched_epoch_is_backend_invariant(self, tiny_dataset):
        graph = tiny_dataset.graph
        examples = tiny_dataset.impressions[:80]
        serial_engine = ParallelEngine(graph, num_workers=2,
                                       backend="serial", num_shards=3)
        serial_batches = list(self._loader(graph, serial_engine,
                                           examples).epoch())
        with ParallelEngine(graph, num_workers=2, backend="shared",
                            num_shards=3) as shared_engine:
            shared_batches = list(self._loader(graph, shared_engine,
                                               examples).epoch())
        assert len(serial_batches) == len(shared_batches) > 1
        for a, b in zip(serial_batches, shared_batches):
            np.testing.assert_array_equal(a.user_ids, b.user_ids)
            np.testing.assert_array_equal(a.labels, b.labels)
            assert a.has_presampled_subgraphs
            assert set(a.user_trees) == set(b.user_trees) \
                == set(np.unique(a.user_ids))
            for node_id in a.user_trees:
                ta, tb = a.user_trees[node_id], b.user_trees[node_id]
                assert _tree_signature(ta) == _tree_signature(tb)

    def test_prefetched_batches_match_unprefetched_tuples(self, tiny_dataset):
        graph = tiny_dataset.graph
        examples = tiny_dataset.impressions[:48]
        plain = list(self._loader(graph, None, examples).epoch())
        engine = ParallelEngine(graph, num_workers=2, backend="serial")
        prefetched = list(self._loader(graph, engine, examples).epoch())
        assert len(plain) == len(prefetched)
        for a, b in zip(plain, prefetched):
            np.testing.assert_array_equal(a.user_ids, b.user_ids)
            np.testing.assert_array_equal(a.query_ids, b.query_ids)
            np.testing.assert_array_equal(a.item_ids, b.item_ids)
            np.testing.assert_array_equal(a.labels, b.labels)


def _tree_signature(tree):
    """Hashable structural fingerprint of a sampled tree."""
    return (tree.node_type, tree.node_id,
            tuple(sorted((str(spec), child.node_id, weight,
                          _tree_signature(child))
                         for spec, child, weight in tree.children)))


# ---------------------------------------------------------------------- #
# Spec + pipeline integration
# ---------------------------------------------------------------------- #
def _parallel_spec(num_workers, backend):
    from repro.api import (
        DataSpec,
        ExperimentSpec,
        ModelSpec,
        ParallelSpec,
        ServingSpec,
        TrainSpec,
    )
    return ExperimentSpec(
        dataset=DataSpec(params={"scale": "million"}, max_train_examples=120,
                         max_test_examples=0),
        model=ModelSpec(name="GraphSAGE", embedding_dim=8, fanouts=(3, 2)),
        training=TrainSpec(epochs=1, batch_size=32, max_batches_per_epoch=3,
                           presample_subgraphs=True, seed=0),
        serving=ServingSpec(ann_cells=4, warm_users=8, warm_queries=8),
        parallel=ParallelSpec(num_workers=num_workers, backend=backend),
        seed=0)


class TestSpecAndPipeline:
    def test_spec_validation(self):
        from repro.api import ExperimentSpec, ParallelSpec, ServingSpec
        with pytest.raises(ValueError, match="backend"):
            ExperimentSpec(parallel=ParallelSpec(num_workers=1,
                                                 backend="threads")).validate()
        with pytest.raises(ValueError, match="num_workers"):
            ExperimentSpec(parallel=ParallelSpec(num_workers=-1)).validate()
        with pytest.raises(ValueError, match="dtype"):
            ExperimentSpec(serving=ServingSpec(dtype="float16")).validate()
        spec = ExperimentSpec(parallel=ParallelSpec(num_workers=2,
                                                    backend="shared"))
        assert spec.validate() is spec
        roundtrip = ExperimentSpec.from_dict(spec.to_dict())
        assert roundtrip.parallel == spec.parallel

    def test_spec_backends_match_engine_backends(self):
        from repro.parallel.engine import BACKENDS
        assert BACKENDS == ("serial", "shared")

    def test_pipeline_backends_are_equivalent_end_to_end(self):
        from repro.api import Pipeline
        requests = [(u, q) for u, q in zip(range(8), range(2, 10))]
        results = {}
        for backend in ("serial", "shared"):
            with Pipeline(_parallel_spec(2, backend)) as pipeline:
                server = pipeline.deploy()
                served = server.serve_batch(requests, k=5)
                ingest = pipeline.ingest(
                    [(2, 3, [5, 9]), (6, 1, [2]), (0, 4, [11, 3, 8])])
                after = server.serve_batch(requests, k=5)
                results[backend] = {
                    "losses": pipeline.result.epoch_losses,
                    "version": ingest.graph_version,
                    "edges": pipeline.graph.total_edges,
                    "served_ids": [r.item_ids for r in served],
                    "served_scores": [r.scores for r in served],
                    "after_ids": [r.item_ids for r in after],
                }
        serial, shared = results["serial"], results["shared"]
        assert serial["losses"] == shared["losses"]
        assert serial["version"] == shared["version"]
        assert serial["edges"] == shared["edges"]
        for key in ("served_ids", "after_ids"):
            for a, b in zip(serial[key], shared[key]):
                np.testing.assert_array_equal(a, b)
        for a, b in zip(serial["served_scores"], shared["served_scores"]):
            np.testing.assert_array_equal(a, b)

    def test_pipeline_without_workers_has_no_engine(self):
        from repro.api import Pipeline
        pipeline = Pipeline(_parallel_spec(0, "serial"))
        assert pipeline.parallel_engine() is None
        pipeline.close()   # no-op


# ---------------------------------------------------------------------- #
# float32 serving read path (satellite pin)
# ---------------------------------------------------------------------- #
class TestServingDtype:
    def test_float32_pins_topk_ids_and_recall(self, tiny_dataset):
        """The fig9-style workload: float32 must not move ids or recall."""
        from repro.core import ZoomerConfig, ZoomerModel
        from repro.serving import OnlineServer

        model = ZoomerModel(tiny_dataset.graph,
                            ZoomerConfig(embedding_dim=8, fanouts=(4, 2),
                                         seed=0))
        servers = {
            dtype: OnlineServer(model, cache_capacity=16, ann_cells=8,
                                ann_nprobe=3, use_inverted_index=False,
                                dtype=dtype)
            for dtype in ("float32", "float64")}
        requests = [(u % 12, (3 * u + 1) % 10) for u in range(32)]
        for dtype, server in servers.items():
            server.warm_caches(range(12), range(10))
            assert server._item_embeddings.dtype == np.dtype(dtype)
            assert server.ann.centroids.dtype == np.dtype(dtype)
        r32 = servers["float32"].serve_batch(requests, k=10)
        r64 = servers["float64"].serve_batch(requests, k=10)
        for a, b in zip(r32, r64):
            np.testing.assert_array_equal(a.item_ids, b.item_ids)
            np.testing.assert_allclose(a.scores, b.scores, rtol=1e-5)
        assert all(e.dtype == np.float32
                   for e in servers["float32"]
                   ._request_embedding_cache.values())
        recall32 = servers["float32"].ann.recall_at_k(
            servers["float32"]._item_embeddings[:16], k=10)
        recall64 = servers["float64"].ann.recall_at_k(
            servers["float64"]._item_embeddings[:16], k=10)
        assert recall32 == recall64


# ---------------------------------------------------------------------- #
# serve_batch assembly vectorization (satellite pin)
# ---------------------------------------------------------------------- #
class TestServeBatchAssemblyPin:
    def test_vectorized_assembly_is_bit_identical_to_reference(
            self, tiny_dataset):
        """Posting -> array conversion and the request-embedding matrix
        must match the per-entry reference loops bit for bit."""
        from repro.core import ZoomerConfig, ZoomerModel
        from repro.serving import OnlineServer

        model = ZoomerModel(tiny_dataset.graph,
                            ZoomerConfig(embedding_dim=8, fanouts=(4, 2),
                                         seed=0))
        server = OnlineServer(model, cache_capacity=16, ann_cells=8,
                              ann_nprobe=3)
        server.prepare(range(12), range(10))
        requests = [(u % 12, q % 10) for u, q in zip(range(20), range(3, 23))]
        results = server.serve_batch(requests, k=6)

        # Reference posting assembly: the pre-vectorization per-entry loop.
        postings = server.inverted_index._postings
        for result in results:
            if not result.from_inverted_index:
                continue
            posting = postings[result.query_id][:6]
            np.testing.assert_array_equal(
                result.item_ids,
                np.array([item for item, _ in posting], dtype=np.int64))
            np.testing.assert_array_equal(
                result.scores, np.array([score for _, score in posting]))

        # Reference request-embedding assembly: per-key vstack.
        reference = np.vstack([
            np.asarray(model.request_embedding(*key), dtype=server.dtype)
            for key in requests])
        np.testing.assert_array_equal(server._request_embeddings(requests),
                                      reference)
