"""End-to-end integration tests: data -> train -> evaluate -> serve -> A/B."""

import numpy as np
import pytest

from repro.baselines import PinSageModel
from repro.core import ZoomerConfig, ZoomerModel, build_ablation_variant
from repro.data import (
    SyntheticTaobaoConfig,
    generate_taobao_dataset,
    train_test_split_examples,
)
from repro.experiments import ABTestConfig, ABTestSimulator
from repro.serving import OnlineServer
from repro.training import Trainer, TrainingConfig


@pytest.fixture(scope="module")
def pipeline_setup():
    """A small but trainable dataset plus splits (module-scoped: reused)."""
    dataset = generate_taobao_dataset(SyntheticTaobaoConfig(
        num_users=40, num_queries=32, num_items=90, num_categories=6,
        sessions_per_user=5.0, seed=11))
    train, test = train_test_split_examples(dataset.impressions, 0.9, seed=0)
    return dataset, train[:500], test[:200]


class TestEndToEnd:
    def test_zoomer_learns_above_chance(self, pipeline_setup):
        dataset, train, test = pipeline_setup
        model = ZoomerModel(dataset.graph,
                            ZoomerConfig(embedding_dim=12, fanouts=(4, 2),
                                         seed=0))
        trainer = Trainer(model, TrainingConfig(epochs=2, batch_size=64,
                                                learning_rate=0.03))
        result = trainer.train(train, test)
        assert result.final_metrics.auc > 0.55
        assert result.epoch_losses[-1] <= result.epoch_losses[0]

    def test_trained_model_serves_relevant_items(self, pipeline_setup):
        dataset, train, test = pipeline_setup
        model = ZoomerModel(dataset.graph,
                            ZoomerConfig(embedding_dim=12, fanouts=(4, 2),
                                         seed=1))
        Trainer(model, TrainingConfig(epochs=1, batch_size=64,
                                      learning_rate=0.05)).train(train)
        server = OnlineServer(model, cache_capacity=10, ann_cells=6)
        server.warm_caches(range(10), range(10))
        session = dataset.sessions[0]
        result = server.serve(session.user_id, session.query_id, k=10)
        assert result.item_ids.shape[0] == 10
        assert result.latency.total_ms < 1000.0

    def test_ab_test_between_trained_models(self, pipeline_setup):
        dataset, train, _ = pipeline_setup
        zoomer = ZoomerModel(dataset.graph,
                             ZoomerConfig(embedding_dim=12, fanouts=(4, 2),
                                          seed=2))
        pinsage = PinSageModel(dataset.graph, embedding_dim=12, fanouts=(4, 2),
                               seed=2)
        config = TrainingConfig(epochs=1, batch_size=64, learning_rate=0.05,
                                max_batches_per_epoch=4)
        Trainer(zoomer, config).train(train)
        Trainer(pinsage, config).train(train)
        simulator = ABTestSimulator(dataset, ABTestConfig(num_requests=15, seed=3))
        result = simulator.run(pinsage, zoomer)
        rows = result.as_rows()
        assert len(rows) == 3
        # Both channels must have produced impressions and the lift is finite.
        assert result.base.impressions > 0
        assert all(np.isfinite(row["lift_pct"]) for row in rows)

    def test_ablation_variant_trains(self, pipeline_setup):
        dataset, train, test = pipeline_setup
        model = build_ablation_variant(
            dataset.graph, "Zoomer-ES",
            ZoomerConfig(embedding_dim=12, fanouts=(4, 2), seed=4))
        trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=64,
                                                learning_rate=0.05,
                                                max_batches_per_epoch=5))
        result = trainer.train(train, test)
        assert result.final_metrics is not None
        assert 0.0 <= result.final_metrics.auc <= 1.0

    def test_roi_downscaling_reduces_cost_not_quality_catastrophically(
            self, pipeline_setup):
        """Fig. 12's premise: a much smaller ROI remains competitive."""
        dataset, train, test = pipeline_setup
        full = ZoomerModel(dataset.graph,
                           ZoomerConfig(embedding_dim=12, fanouts=(6, 3),
                                        roi_downscale=1.0, seed=5))
        small = ZoomerModel(dataset.graph,
                            ZoomerConfig(embedding_dim=12, fanouts=(6, 3),
                                         roi_downscale=0.4, seed=5))
        roi_full = full.roi_for(0, 0)
        roi_small = small.roi_for(0, 0)
        assert roi_small.num_nodes() <= roi_full.num_nodes()
        config = TrainingConfig(epochs=1, batch_size=64, learning_rate=0.05,
                                max_batches_per_epoch=4)
        auc_small = Trainer(small, config).train(train, test).final_metrics.auc
        assert auc_small > 0.4
