"""Tests for the asyncio TCP serving daemon and the open-loop load generator.

The guarantees pinned here:

* **Equivalence** — a request served over the socket returns exactly the
  ids/scores of an in-process ``serve_batch`` call on the same server.
* **Admission control** — the daemon sheds precisely the arrivals beyond
  ``max_queue_depth`` (``reject``), or evicts the oldest queued request in
  the newcomer's favour (``drop-oldest``); per-tenant token buckets reject
  over-quota tenants without consuming queue slots.
* **Idle-straggler fix** — a partial batch parked under idle traffic is
  flushed by the timer within ``max_wait_ms`` with no follow-up request.
* **Graceful drain** — ``stop()``/``close()`` answers every admitted
  request before the connections close; post-drain arrivals are rejected.
* **Robustness** — malformed frames get a 400-style reply and the
  connection keeps working.
* **Accounting** — the ``stats`` verb's counters reconcile with the
  underlying :class:`~repro.serving.batcher.BatcherStats`.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.api.spec import DaemonSpec
from repro.baselines import STAMPModel
from repro.serving import (
    DaemonClient,
    OnlineServer,
    OpenLoopLoadGenerator,
    ServeRequest,
    ServingDaemon,
)
from repro.serving.daemon import TokenBucket


@pytest.fixture(scope="module")
def server(tiny_graph):
    model = STAMPModel(tiny_graph, embedding_dim=8, seed=0)
    server = OnlineServer(model, cache_capacity=5, ann_cells=4, ann_nprobe=2)
    server.warm_caches(range(5), range(5))
    server.build_inverted_index(range(5))
    return server


def make_daemon(server, **overrides) -> ServingDaemon:
    defaults = dict(max_batch_size=4, max_wait_ms=5.0, max_queue_depth=16)
    defaults.update(overrides)
    return ServingDaemon(server, spec=DaemonSpec(**defaults))


class _SlowServer:
    """Wraps a server with a fixed per-batch delay to make overload real."""

    def __init__(self, server, delay_s=0.03):
        self._server = server
        self._delay_s = delay_s

    def serve_batch(self, requests, k=10):
        time.sleep(self._delay_s)
        return self._server.serve_batch(requests, k=k)


class TestRoundTrip:
    def test_matches_in_process_serve_batch(self, server):
        expected = server.serve_batch([(1, 2)], k=5)[0]
        with make_daemon(server) as daemon, \
                DaemonClient(daemon.host, daemon.port) as client:
            response = client.serve(1, 2, k=5)
        assert response["ok"] is True
        assert response["user_id"] == 1 and response["query_id"] == 2
        np.testing.assert_array_equal(response["item_ids"],
                                      expected.item_ids[:5])
        np.testing.assert_allclose(response["scores"], expected.scores[:5])
        assert response["from_inverted_index"] == expected.from_inverted_index

    def test_pipelined_batch_matches_and_echoes_ids(self, server):
        requests = [(0, 1), (1, 2), (2, 3), (3, 4)]
        expected = server.serve_batch(requests, k=3)
        with make_daemon(server) as daemon, \
                DaemonClient(daemon.host, daemon.port) as client:
            for index, (user_id, query_id) in enumerate(requests):
                client.send({"user_id": user_id, "query_id": query_id,
                             "k": 3, "id": index})
            responses = sorted((client.recv() for _ in requests),
                               key=lambda r: r["id"])
        for response, result in zip(responses, expected):
            assert response["ok"] is True
            np.testing.assert_array_equal(response["item_ids"],
                                          result.item_ids[:3])

    def test_tenant_round_trips(self, server):
        with make_daemon(server) as daemon, \
                DaemonClient(daemon.host, daemon.port) as client:
            response = client.serve(0, 1, k=3, tenant="gold")
        assert response["tenant"] == "gold"


class TestIdleStragglerFlush:
    def test_partial_batch_flushes_without_follow_up_traffic(self, server):
        # One lonely request, a batch that will never fill: the timer must
        # flush it within ~max_wait_ms, not park it until the next submit.
        with make_daemon(server, max_batch_size=100, max_wait_ms=10.0,
                         max_queue_depth=128) as daemon, \
                DaemonClient(daemon.host, daemon.port) as client:
            start = time.perf_counter()
            response = client.serve(0, 1, k=3)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
        assert response["ok"] is True
        assert daemon.batcher.stats.flushed_wait >= 1
        assert elapsed_ms < 5000.0   # generous bound for a 10 ms deadline


class TestAdmissionControl:
    def test_sheds_under_sustained_overload(self, server):
        # A deliberately slow backend (30 ms per batch of <= 4) and a burst
        # of 40 instantaneous arrivals: the 4-deep admission queue must shed
        # part of the burst with 429s while everything admitted is served.
        slow = _SlowServer(server, delay_s=0.03)
        with make_daemon(slow, max_batch_size=4, max_wait_ms=1.0,
                         max_queue_depth=4) as daemon:
            with DaemonClient(daemon.host, daemon.port) as client:
                total = 40
                for index in range(total):
                    client.send({"user_id": index % 5, "query_id": index % 5,
                                 "k": 3, "id": index})
                responses = [client.recv() for _ in range(total)]
        served = [r for r in responses if r["ok"]]
        shed = [r for r in responses if not r["ok"]]
        assert all(r["error"] == "shed" and r["code"] == 429 for r in shed)
        assert shed, "an overloaded 4-deep queue must shed part of the burst"
        assert served, "admitted requests must still be served"
        assert daemon.stats.shed_queue == len(shed)
        assert daemon.stats.served == len(served)
        assert daemon.stats.received == total
        # Every frame got exactly one response, none were dropped silently.
        assert sorted(r["id"] for r in responses) == list(range(total))

    def test_drop_oldest_evicts_queued_victim(self, server):
        daemon = make_daemon(server, max_batch_size=2,
                             max_wait_ms=60_000.0, max_queue_depth=2,
                             shed_policy="drop-oldest")

        async def scenario():
            loop = asyncio.get_running_loop()
            old, newer = loop.create_future(), loop.create_future()
            daemon._admitted.append((ServeRequest(0, 0), old))
            daemon._admitted.append((ServeRequest(1, 1), newer))
            rejection = daemon._admission_decision(ServeRequest(2, 2))
            assert rejection is None          # the newcomer takes the slot
            assert old.done()                 # oldest was evicted...
            assert old.result().error == "shed"
            assert not newer.done()           # ...and only the oldest
            assert daemon.stats.shed_queue == 1

        asyncio.run(scenario())

    def test_reject_policy_sheds_the_newcomer(self, server):
        daemon = make_daemon(server, max_batch_size=2,
                             max_wait_ms=60_000.0, max_queue_depth=2,
                             shed_policy="reject")

        async def scenario():
            loop = asyncio.get_running_loop()
            futures = [loop.create_future(), loop.create_future()]
            for index, future in enumerate(futures):
                daemon._admitted.append((ServeRequest(index, index), future))
            rejection = daemon._admission_decision(ServeRequest(2, 2))
            assert rejection is not None and rejection.error == "shed"
            assert not any(future.done() for future in futures)

        asyncio.run(scenario())

    def test_per_tenant_quota(self, server):
        # tenant "free" gets 2 req/s with a burst of 2 tokens; five
        # back-to-back requests leave three quota-rejected.  The default
        # tenant is unmetered.
        with make_daemon(server, tenant_quotas={"free": 2.0}) as daemon:
            with DaemonClient(daemon.host, daemon.port) as client:
                for index in range(5):
                    client.send({"user_id": index % 5, "query_id": index % 5,
                                 "k": 3, "tenant": "free", "id": index})
                responses = [client.recv() for _ in range(5)]
                ok = [r for r in responses if r["ok"]]
                rejected = [r for r in responses if not r["ok"]]
                assert len(ok) == 2
                assert all(r["error"] == "quota" and r["code"] == 429
                           for r in rejected)
                assert client.serve(0, 1, k=3)["ok"] is True   # unmetered
        assert daemon.stats.shed_quota == 3
        assert daemon.stats.quota_rejections_by_tenant == {"free": 3}

    def test_token_bucket_refills_over_time(self):
        bucket = TokenBucket(rate=10.0, capacity=1.0)
        assert bucket.try_acquire(0.0) is True
        assert bucket.try_acquire(0.0) is False    # burst spent
        assert bucket.try_acquire(0.1) is True     # 0.1 s * 10/s = 1 token
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)


class TestProtocolRobustness:
    def test_malformed_frames_do_not_kill_the_connection(self, server):
        with make_daemon(server) as daemon, \
                DaemonClient(daemon.host, daemon.port) as client:
            client.send_raw(b"this is not json\n")
            assert client.recv()["code"] == 400
            client.send_raw(b"[1, 2, 3]\n")            # JSON, not an object
            assert client.recv()["code"] == 400
            client.send({"op": "serve"})               # missing user/query
            assert client.recv()["code"] == 400
            client.send({"op": "no-such-op"})
            assert client.recv()["code"] == 400
            response = client.serve(0, 1, k=3)         # still alive
            assert response["ok"] is True
            assert daemon.stats.malformed == 4

    def test_invalid_k_and_tenant_rejected(self, server):
        with make_daemon(server) as daemon, \
                DaemonClient(daemon.host, daemon.port) as client:
            client.send({"user_id": 0, "query_id": 1, "k": 0})
            assert client.recv()["code"] == 400
            client.send({"user_id": 0, "query_id": 1, "tenant": ""})
            assert client.recv()["code"] == 400


class TestGracefulDrain:
    def test_admitted_requests_answered_before_close(self, server):
        with make_daemon(server, max_batch_size=100, max_wait_ms=60_000.0,
                         max_queue_depth=128) as daemon:
            client = DaemonClient(daemon.host, daemon.port)
            for index in range(3):
                client.send({"user_id": index, "query_id": index, "k": 3,
                             "id": index})
            time.sleep(0.05)                  # let the daemon admit them
            daemon.close()
            responses = [client.recv() for _ in range(3)]
            assert all(r["ok"] for r in responses)
            with pytest.raises(ConnectionError):
                client.recv()                 # drained daemon closed the socket
            client.close()
        assert daemon.stats.served == 3
        assert daemon.batcher.stats.flushed_manual >= 1   # the drain flush

    def test_close_is_idempotent(self, server):
        daemon = make_daemon(server).start_in_thread()
        daemon.close()
        daemon.close()

    def test_drop_oldest_eviction_racing_a_drain_resolves_every_future(
            self, server):
        # The race: the queue sits at max depth, a newcomer's drop-oldest
        # eviction resolves the victim, and a graceful drain begins in the
        # same breath.  Nothing may be left hanging — the victim holds its
        # shed result and the drain serves every survivor.
        daemon = make_daemon(server, max_batch_size=2, max_wait_ms=60_000.0,
                             max_queue_depth=2, shed_policy="drop-oldest")

        async def scenario():
            await daemon.start()
            loop = asyncio.get_running_loop()
            futures = [loop.create_future() for _ in range(2)]
            for index, future in enumerate(futures):
                daemon._admitted.append((ServeRequest(index, index), future))
                daemon.stats.admitted += 1
            assert daemon._admission_decision(ServeRequest(2, 2)) is None
            newcomer = loop.create_future()
            daemon._admitted.append((ServeRequest(2, 2), newcomer))
            daemon.stats.admitted += 1
            assert futures[0].done()
            assert futures[0].result().error == "shed"
            await daemon.stop()
            for future in [futures[1], newcomer]:
                assert future.done(), "drain left an admitted future hanging"
                assert future.result().item_ids.size   # served, not shed
            assert daemon.stats.shed_queue == 1
            assert daemon.stats.served == 2

        asyncio.run(scenario())


class TestStatsVerb:
    def test_counters_reconcile_with_batcher_stats(self, server):
        with make_daemon(server) as daemon, \
                DaemonClient(daemon.host, daemon.port) as client:
            for index in range(4):
                assert client.serve(index % 5, index % 5, k=3)["ok"]
            stats = client.stats()
        assert stats["received"] == 4
        assert stats["admitted"] == 4
        assert stats["served"] == 4
        assert stats["queue_depth"] == 0
        assert stats["batcher"]["submitted"] == stats["admitted"]
        assert stats["batcher"]["served"] == stats["served"]
        assert stats["batcher"]["batches"] >= 1
        assert daemon.stats.stats_requests == 1


class TestLoadGenerator:
    def test_open_loop_run_accounts_for_every_request(self, server):
        with make_daemon(server, max_batch_size=8,
                         max_queue_depth=64) as daemon:
            generator = OpenLoopLoadGenerator(
                daemon.host, daemon.port, qps=400.0, num_requests=30,
                num_users=5, num_queries=5, k=3, seed=11)
            report = generator.run()
        assert report.sent == 30
        assert report.sent == (report.served + report.shed + report.quota
                               + report.draining + report.errors)
        assert report.served == 30            # no overload at this scale
        assert report.errors == 0
        assert len(report.latencies_ms) == report.served
        assert report.p50_ms > 0.0
        assert report.to_dict()["latency_ms"]["p99"] >= \
            report.to_dict()["latency_ms"]["p50"]

    def test_schedule_is_reproducible_and_poisson_paced(self):
        generator = OpenLoopLoadGenerator("127.0.0.1", 1, qps=100.0,
                                          num_requests=200, num_users=5,
                                          num_queries=5, seed=3)
        again = OpenLoopLoadGenerator("127.0.0.1", 1, qps=100.0,
                                      num_requests=200, num_users=5,
                                      num_queries=5, seed=3)
        offsets = generator.schedule()
        np.testing.assert_array_equal(offsets, again.schedule())
        assert np.all(np.diff(offsets) > 0)
        mean_gap = float(np.mean(np.diff(offsets)))
        assert 0.5 / 100.0 < mean_gap < 2.0 / 100.0   # ~1/qps

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenLoopLoadGenerator("h", 1, qps=0.0, num_requests=1,
                                  num_users=1, num_queries=1)
        with pytest.raises(ValueError):
            OpenLoopLoadGenerator("h", 1, qps=1.0, num_requests=0,
                                  num_users=1, num_queries=1)
