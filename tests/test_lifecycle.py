"""Graph-lifecycle tests: shrink-deltas, decay, eviction, compaction, serving.

The lifecycle contract, pinned layer by layer:

* :class:`GraphUpdate` validates its shrink side exactly like its grow side
  (non-1-D endpoints rejected, wrong-width feature blocks rejected at
  accumulate *and* apply time, nothing mutated on failure),
* :meth:`HeteroGraph.apply_updates` shrinks relations with alias state
  bit-identical to a from-scratch build (decay-to-zero edges leave the alias
  tables completely), and eviction-then-re-add restores a servable node,
* :class:`GraphCompactor` passes are strict no-ops when there is nothing to
  do (no version bump, sampling byte-for-byte unchanged),
* the serving layer absorbs shrink-deltas: vectorized cache invalidation,
  ANN tombstones that persist across scoped rebuilds, purged postings — a
  served result can never contain an evicted item,
* the ``temporal-logs`` dataset and the pipeline's compaction cadence tie
  the layers together.
"""

import numpy as np
import pytest

from repro.api import ExperimentSpec, LifecycleSpec, Pipeline, load_dataset
from repro.graph import GraphCompactor, GraphUpdate, HeteroGraph
from repro.graph.alias import BatchedAliasTable
from repro.graph.schema import EdgeType, NodeType, RelationSpec, taobao_schema
from repro.graph.update import GraphDelta
from repro.serving.ann import IVFIndex
from repro.serving.cache import NeighborCache
from repro.serving.inverted_index import InvertedIndex
from repro.serving.sharding import ShardedIndex
from repro.streaming import ReplayDriver

CLICK = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)


def _unit_rows(rng, count, dim=8):
    rows = rng.normal(size=(count, dim))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def _graph(seed=0, num_users=12, num_queries=8, num_items=20, edges=80):
    rng = np.random.default_rng(seed)
    graph = HeteroGraph(taobao_schema(feature_dim=8))
    graph.add_nodes(NodeType.USER, _unit_rows(rng, num_users))
    graph.add_nodes(NodeType.QUERY, _unit_rows(rng, num_queries))
    graph.add_nodes(NodeType.ITEM, _unit_rows(rng, num_items))
    src = rng.integers(0, num_users, size=edges)
    dst = rng.integers(0, num_items, size=edges)
    graph.add_edges(CLICK, src, dst, rng.random(edges) + 0.1, symmetric=True)
    graph.finalize()
    return graph


def _assert_alias_matches_scratch(relation):
    """The relation's alias table must equal a from-scratch build, bitwise."""
    scratch = BatchedAliasTable(relation.indptr, relation.weights)
    np.testing.assert_array_equal(relation._alias_batch._prob, scratch._prob)
    np.testing.assert_array_equal(relation._alias_batch._alias, scratch._alias)


# ---------------------------------------------------------------------- #
# GraphUpdate validation (satellites: non-1-D endpoints, feature width)
# ---------------------------------------------------------------------- #
class TestUpdateValidation:
    def test_add_edges_rejects_2d_endpoints(self):
        square = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(ValueError, match="1-D"):
            GraphUpdate().add_edges(CLICK, square, square)

    def test_remove_edges_rejects_2d_endpoints(self):
        square = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(ValueError, match="1-D"):
            GraphUpdate().remove_edges(CLICK, square, square)

    def test_evict_rejects_2d_ids(self):
        with pytest.raises(ValueError, match="1-D"):
            GraphUpdate().evict_nodes("item", np.zeros((2, 2), dtype=np.int64))

    def test_add_nodes_rejects_mismatched_accumulate_width(self):
        update = GraphUpdate().add_nodes("user", np.zeros((2, 8)))
        with pytest.raises(ValueError, match="width mismatch"):
            update.add_nodes("user", np.zeros((1, 5)))

    def test_wrong_feature_width_rejected_atomically(self):
        graph = _graph()
        version = graph.version
        nodes_before = dict(graph.num_nodes)
        edges_before = graph.total_edges
        update = GraphUpdate().add_nodes("user", np.zeros((2, 5))) \
            .add_edges(CLICK, [0], [0])
        with pytest.raises(ValueError, match="feature dim mismatch"):
            graph.apply_updates(update)
        assert graph.version == version
        assert dict(graph.num_nodes) == nodes_before
        assert graph.total_edges == edges_before

    def test_scale_weights_rejects_non_positive(self):
        with pytest.raises(ValueError):
            GraphUpdate().scale_weights(0.0)
        with pytest.raises(ValueError):
            GraphUpdate().scale_weights(float("nan"))

    def test_eviction_of_unknown_ids_rejected(self):
        graph = _graph()
        with pytest.raises(IndexError, match="out of range"):
            graph.apply_updates(GraphUpdate().evict_nodes(
                "item", [graph.num_nodes["item"] + 5]))


# ---------------------------------------------------------------------- #
# Shrinking the graph: decay, pruning, removal, eviction
# ---------------------------------------------------------------------- #
class TestShrink:
    def test_decay_rescales_without_alias_rebuild(self):
        graph = _graph(1)
        relation = graph.relations[CLICK]
        alias_before = relation.alias_sampler()
        weights_before = relation.weights.copy()
        draws_before = graph.sample_neighbors_batch(
            CLICK, np.arange(5), 4, rng=np.random.default_rng(9))
        delta = graph.apply_updates(GraphUpdate().scale_weights(0.25))
        assert delta.decay == 0.25 and not delta.touched
        # Per-row normalisation: the very same alias object stays valid.
        assert relation.alias_sampler() is alias_before
        np.testing.assert_allclose(relation.weights, weights_before * 0.25)
        draws_after = graph.sample_neighbors_batch(
            CLICK, np.arange(5), 4, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(draws_before.ids, draws_after.ids)

    def test_decay_to_zero_edges_leave_alias_tables(self):
        """Pruned edges vanish from the alias tables, bitwise vs scratch."""
        graph = _graph(2)
        for spec in (CLICK, CLICK.reverse()):
            graph.relations[spec].alias_sampler()
        threshold = float(np.median(graph.relations[CLICK].weights)) * 0.5
        delta = graph.apply_updates(
            GraphUpdate().scale_weights(0.5).prune_edges_below(threshold))
        assert delta.removed_edges > 0
        for spec in (CLICK, CLICK.reverse()):
            relation = graph.relations[spec]
            assert (relation.weights >= threshold).all()
            _assert_alias_matches_scratch(relation)

    def test_explicit_removal_is_idempotent(self):
        graph = _graph(3)
        relation = graph.relations[CLICK]
        row = int(np.nonzero(np.diff(relation.indptr))[0][0])
        neighbor = int(relation.indices[relation.indptr[row]])
        degree = relation.degree(row)
        first = graph.apply_updates(
            GraphUpdate().remove_edges(CLICK, [row], [neighbor]))
        assert first.removed_edges == 1
        assert relation.degree(row) == degree - 1
        second = graph.apply_updates(
            GraphUpdate().remove_edges(CLICK, [row], [neighbor]))
        assert second.removed_edges == 0    # already gone: silent no-op

    def test_eviction_clears_both_directions_and_touches(self):
        graph = _graph(4)
        reverse = CLICK.reverse()
        for spec in (CLICK, reverse):
            graph.relations[spec].alias_sampler()
        victims = [3, 7]
        delta = graph.apply_updates(GraphUpdate().evict_nodes("item", victims))
        assert not np.isin(graph.relations[CLICK].indices, victims).any()
        for victim in victims:
            assert graph.relations[reverse].degree(victim) == 0
        np.testing.assert_array_equal(delta.evicted_ids("item"), victims)
        # Evicted ids are also touched: existing invalidation paths fire.
        assert np.isin(victims, delta.touched_ids("item")).all()
        for spec in (CLICK, reverse):
            _assert_alias_matches_scratch(graph.relations[spec])

    def test_evict_then_re_add_same_node_id(self):
        graph = _graph(5)
        graph.relations[CLICK].alias_sampler()
        victim = 6
        graph.apply_updates(GraphUpdate().evict_nodes("item", [victim]))
        assert graph.relations[CLICK.reverse()].degree(victim) == 0
        # Feature row survives tombstoning (id-aligned trained state).
        assert graph.num_nodes["item"] == 20
        revive = graph.apply_updates(GraphUpdate().add_edges(
            CLICK, [0, 1], [victim, victim], [1.0, 2.0], symmetric=True))
        assert graph.relations[CLICK.reverse()].degree(victim) == 2
        assert victim in revive.touched_ids("item")
        _assert_alias_matches_scratch(graph.relations[CLICK])
        draws = graph.sample_neighbors_batch(
            CLICK.reverse(), np.array([victim]), 4,
            rng=np.random.default_rng(0))
        assert set(draws.ids[0][draws.valid_mask[0]]) <= {0, 1}

    def test_delta_merge_revives_evicted_nodes(self):
        earlier = GraphDelta(version=1, evicted={"item": np.array([3, 5])},
                             touched={"item": np.array([3, 5])},
                             removed_edges=4, decay=0.5)
        later = GraphDelta(version=2, touched={"item": np.array([5])},
                           num_new_edges=1, decay=0.5)
        merged = earlier.merge(later)
        np.testing.assert_array_equal(merged.evicted_ids("item"), [3])
        assert merged.removed_edges == 4
        assert merged.decay == 0.25


# ---------------------------------------------------------------------- #
# GraphCompactor
# ---------------------------------------------------------------------- #
class TestCompactor:
    def test_empty_pass_is_strict_no_op(self):
        graph = _graph(6)
        graph.relations[CLICK].alias_sampler()
        version = graph.version
        draws_before = graph.sample_neighbors_batch(
            CLICK, np.arange(8), 4, rng=np.random.default_rng(1))
        compactor = GraphCompactor(graph, LifecycleSpec(
            enabled=True, half_life=100.0, node_ttl=500.0))
        # No time elapsed, nothing idle: the pass must do nothing at all.
        assert compactor.compact() is None
        assert graph.version == version
        draws_after = graph.sample_neighbors_batch(
            CLICK, np.arange(8), 4, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(draws_before.ids, draws_after.ids)
        np.testing.assert_array_equal(draws_before.weights,
                                      draws_after.weights)

    def test_decay_follows_observed_clock(self):
        graph = _graph(7)
        weights = graph.relations[CLICK].weights.copy()
        compactor = GraphCompactor(graph, LifecycleSpec(
            enabled=True, half_life=100.0))
        compactor.observe([(0, 0, (0,), 200.0)],
                          GraphDelta(version=graph.version))
        delta = compactor.compact()
        assert delta is not None and delta.decay == pytest.approx(0.25)
        np.testing.assert_allclose(graph.relations[CLICK].weights,
                                   weights * 0.25)
        # Anchor advanced: a second pass with no new time is a no-op.
        assert compactor.compact() is None

    def test_node_ttl_eviction_and_reactivation(self):
        graph = _graph(8)
        spec = LifecycleSpec(enabled=True, node_ttl=50.0)
        compactor = GraphCompactor(graph, spec)
        active = GraphDelta(version=graph.version,
                            touched={"user": np.array([0, 1])})
        compactor.observe([(0, 0, (0,), 100.0)], active)
        delta = compactor.compact()
        assert delta is not None
        evicted_users = delta.evicted_ids("user")
        assert evicted_users.size == graph.num_nodes["user"] - 2
        assert not np.isin([0, 1], evicted_users).any()
        # Touching an evicted node revives it for the books too.
        compactor.observe(
            [(2, 0, (0,), 130.0)],
            GraphDelta(version=graph.version,
                       touched={"user": np.array([2])}))
        assert not compactor._evicted["user"][2]

    def test_memory_budget_evicts_the_longest_idle(self):
        graph = _graph(9)
        used = graph.memory_bytes(include_alias=True)
        compactor = GraphCompactor(graph, LifecycleSpec(
            enabled=True, max_memory_bytes=int(used * 0.8)))
        compactor.observe([(0, 0, (0,), 10.0)],
                          GraphDelta(version=graph.version,
                                     touched={"item": np.arange(10)}))
        update = compactor.build_update()
        assert update.shrinks()
        # Pressure eviction is bounded: at most 25% of a type per pass.
        for node_type, ids in update.evictions.items():
            assert ids.size <= int(graph.num_nodes[node_type] * 0.25) + 1


# ---------------------------------------------------------------------- #
# Serving-layer shrink absorption
# ---------------------------------------------------------------------- #
class TestServingShrink:
    def test_cache_invalidate_nodes_matches_key_loop(self):
        array_cache = NeighborCache(capacity=4)
        loop_cache = NeighborCache(capacity=4)
        for cache in (array_cache, loop_cache):
            for node_id in range(6):
                cache.put("user", node_id, [("item", node_id, 1.0)])
                cache.put("item", node_id, [("user", node_id, 1.0)])
        ids = np.array([1, 3, 4, 99])
        dropped = array_cache.invalidate_nodes("user", ids)
        count = loop_cache.invalidate_keys([("user", int(i)) for i in ids])
        assert sorted(dropped) == [1, 3, 4]
        assert len(dropped) == count
        assert array_cache.stats.invalidations == \
            loop_cache.stats.invalidations
        for node_id in range(6):
            assert (array_cache.get("user", node_id) is None) == \
                (loop_cache.get("user", node_id) is None)
            assert array_cache.get("item", node_id) is not None

    def test_touched_keys_compat_wrapper_still_works(self):
        delta = GraphDelta(version=1,
                           touched={"user": np.array([2, 4])})
        assert list(delta.touched_keys()) == [("user", 2), ("user", 4)]

    def test_inverted_index_purge_items(self):
        index = InvertedIndex(posting_length=5)
        index.add_posting(0, [(1, 0.9), (2, 0.8), (3, 0.7)])
        index.add_posting(1, [(2, 0.6), (4, 0.5)])
        from repro.serving.inverted_index import ItemMetadata
        index.add_metadata(ItemMetadata(item_id=2))
        removed = index.purge_items([2, 3])
        assert removed == 3
        assert [i for i, _ in index.lookup(0)] == [1]
        assert [i for i, _ in index.lookup(1)] == [4]
        assert index.metadata(2) is None

    def test_ivf_removed_rows_leave_every_cell(self):
        rng = np.random.default_rng(0)
        corpus = rng.normal(size=(40, 6))
        index = IVFIndex(num_cells=4, nprobe=4, seed=0).build(corpus)
        removed = np.array([5, 17])
        fresh = index.rebuilt(corpus, np.empty(0, dtype=np.int64),
                              removed=removed)
        members = np.concatenate(fresh._cells)
        assert not np.isin(removed, members).any()
        ids, _ = fresh.search_batch(corpus[[5, 17]], k=40)
        assert not np.isin(removed, ids).any()
        # Tombstones persist across a further scoped rebuild...
        again = fresh.rebuilt(corpus, np.array([1, 2]))
        assert not np.isin(removed, np.concatenate(again._cells)).any()
        # ...until the row is touched again (evict-then-re-add).
        revived = again.rebuilt(corpus, np.array([5]))
        assert 5 in np.concatenate(revived._cells)
        assert 17 not in np.concatenate(revived._cells)

    def test_sharded_index_excludes_removed_positions(self):
        rng = np.random.default_rng(1)
        corpus = rng.normal(size=(24, 5))
        sharded = ShardedIndex(num_shards=3).build(corpus)
        removed = np.array([4, 9, 20])
        fresh = sharded.rebuilt(corpus, np.empty(0, dtype=np.int64),
                                removed=removed)
        ids, _ = fresh.search_batch(corpus[removed], k=24)
        assert not np.isin(removed, ids).any()
        # Persistence without re-listing, then revival via rows.
        again = fresh.rebuilt(corpus, np.empty(0, dtype=np.int64))
        ids, _ = again.search_batch(corpus[removed], k=24)
        assert not np.isin(removed, ids).any()
        revived = again.rebuilt(corpus, np.array([9]))
        ids, _ = revived.search_batch(corpus[[9]], k=24)
        assert 9 in ids

    def test_serving_never_returns_evicted_items(self):
        dataset = load_dataset("temporal-logs", num_sessions=300, seed=1)
        spec = ExperimentSpec.from_dict({
            "dataset": {"name": "temporal-logs",
                        "params": {"num_sessions": 300, "seed": 1}},
            "model": {"embedding_dim": 8, "fanouts": [4, 2]},
            "training": {"epochs": 1, "max_batches_per_epoch": 4},
            "serving": {"ann_cells": 4, "ann_nprobe": 2,
                        "warm_users": 10, "warm_queries": 10},
            "streaming": {"micro_batch_size": 16, "refresh_every": 2},
            "lifecycle": {"enabled": True, "half_life": 150.0,
                          "edge_ttl": 450.0, "node_ttl": 400.0,
                          "compact_every": 2},
        })
        pipeline = Pipeline(spec)
        server = pipeline.deploy()
        report = ReplayDriver(pipeline).replay(dataset.replay_sessions)
        assert report.ingest.compactions > 0
        assert report.ingest.evicted_nodes > 0
        evicted = set(np.nonzero(
            pipeline._compactor._evicted[server.item_type])[0].tolist())
        assert evicted
        served = set()
        for user_id in range(5):
            for query_id in range(5):
                result = server.serve(user_id, query_id, k=20)
                served |= set(int(i) for i in result.item_ids)
        assert not served & evicted


# ---------------------------------------------------------------------- #
# Spec + dataset + pipeline wiring
# ---------------------------------------------------------------------- #
class TestLifecycleWiring:
    def test_lifecycle_spec_round_trips_and_validates(self):
        spec = ExperimentSpec(lifecycle=LifecycleSpec(
            enabled=True, half_life=10.0, edge_ttl=30.0, node_ttl=40.0))
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone.lifecycle == spec.lifecycle
        clone.validate()
        with pytest.raises(ValueError, match="compact_every"):
            ExperimentSpec(lifecycle=LifecycleSpec(
                enabled=True, compact_every=0)).validate()
        with pytest.raises(ValueError, match="edge_ttl"):
            ExperimentSpec(lifecycle=LifecycleSpec(
                enabled=True, edge_ttl=5.0)).validate()
        with pytest.raises(ValueError, match="non-negative"):
            ExperimentSpec(lifecycle=LifecycleSpec(
                half_life=-1.0)).validate()

    def test_weight_floor_derivation(self):
        assert LifecycleSpec(min_weight=0.3,
                             edge_ttl=10.0).weight_floor() == 0.3
        assert LifecycleSpec(half_life=10.0, edge_ttl=20.0).weight_floor() \
            == pytest.approx(0.25)
        assert LifecycleSpec().weight_floor() == 0.0

    def test_temporal_logs_dataset_shape(self):
        dataset = load_dataset("temporal-logs", num_sessions=200, seed=0)
        assert dataset.graph.num_nodes["item"] > 0
        assert dataset.impressions
        stamps = [s.timestamp for s in dataset.replay_sessions]
        assert stamps == sorted(stamps)
        # The warm prefix strictly precedes the tail in time.
        assert dataset.sessions[-1].timestamp <= stamps[0]
        # Drift: the earliest and latest cohorts click different items.
        early = {i for s in dataset.sessions[:30] for i in s.clicked_items}
        late = {i for s in dataset.replay_sessions[-30:]
                for i in s.clicked_items}
        assert len(early & late) < len(early | late) * 0.5

    def test_pipeline_compaction_counters(self):
        dataset = load_dataset("temporal-logs", num_sessions=240, seed=2)
        spec = ExperimentSpec.from_dict({
            "dataset": {"name": "temporal-logs",
                        "params": {"num_sessions": 240, "seed": 2}},
            "streaming": {"micro_batch_size": 8},
            "lifecycle": {"enabled": True, "half_life": 100.0,
                          "edge_ttl": 300.0, "node_ttl": 250.0,
                          "compact_every": 3},
        })
        pipeline = Pipeline(spec)
        pipeline.build_graph()
        report = pipeline.ingest(dataset.replay_sessions)
        assert report.compactions > 0
        assert report.removed_edges > 0
        assert report.graph_version == pipeline.graph.version

    def test_lifecycle_disabled_is_append_only(self):
        dataset = load_dataset("temporal-logs", num_sessions=160, seed=3)
        spec = ExperimentSpec.from_dict({
            "dataset": {"name": "temporal-logs",
                        "params": {"num_sessions": 160, "seed": 3}},
            "streaming": {"micro_batch_size": 8},
        })
        pipeline = Pipeline(spec)
        pipeline.build_graph()
        report = pipeline.ingest(dataset.replay_sessions)
        assert pipeline._compactor is None
        assert report.compactions == 0
        assert report.evicted_nodes == 0
        assert report.removed_edges == 0
