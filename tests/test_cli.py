"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.scale == "million"
        assert args.model == "zoomer"
        assert args.epochs == 1

    def test_invalid_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--scale", "galaxy"])

    def test_unknown_model_rejected_at_runtime(self, capsys):
        with pytest.raises(SystemExit):
            main(["train", "--model", "does-not-exist", "--max-examples", "50"])


class TestCommands:
    def test_motivation_command_prints_table(self, capsys):
        code = main(["motivation", "--scale", "million", "--seed", "1"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Information-overload measurements" in captured
        assert "Fig. 4b" in captured

    def test_train_command_small_budget(self, capsys):
        code = main(["train", "--model", "STAMP", "--max-examples", "150",
                     "--epochs", "1", "--batch-size", "64"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "auc" in captured
        assert "STAMP" in captured

    def test_ingest_command_streams_and_serves(self, capsys):
        code = main(["ingest", "--max-examples", "80", "--epochs", "1",
                     "--embedding-dim", "8", "--fanout", "3",
                     "--replay-fraction", "0.2", "--micro-batch-size", "16",
                     "--refresh-every", "2"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Streaming ingest" in captured
        assert "server refreshes" in captured
        assert "Post-ingest serving" in captured

    def test_ingest_rejects_bad_replay_fraction(self):
        with pytest.raises(SystemExit):
            main(["ingest", "--replay-fraction", "1.5"])
